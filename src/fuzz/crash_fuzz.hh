/**
 * @file
 * Crash-recovery fuzzing over the WHISPER suite (DESIGN.md §6).
 *
 * The fuzzer sweeps (application x crash point x RNG seed x survival
 * rate): each case runs an application's workload, injects a
 * simulated power cut immediately before one specific PM operation
 * (pm::CrashPlan), resolves the cut with a seeded survivor set over
 * the dirty lines (PmPool::crashWithSurvivors), re-mounts through
 * WhisperApp::recover() and then checks both the generic post-crash
 * contract (verifyRecovered) and the access layer's recovery
 * invariants (checkRecoveryInvariants): Mnemosyne redo logs replayed
 * and retired, NVML undo logs rolled back to TxState::None, PMFS
 * journal FREE plus fsck-clean, native descriptor/status protocols
 * settled. Violations carry the VerifyReport's named invariant.
 *
 * With FuzzConfig::threads > 1 (MOD- and Hybrid-layer apps only) the workload
 * races real threads whose PM-op interleaving is pinned by a seeded
 * SchedGate schedule, so the global op index — and therefore the
 * crash point and the post-crash image — stays deterministic and a
 * --replay with the same schedule is bit-identical.
 *
 * Every case is derived deterministically from (sweep seed, app name,
 * case id), runs in its own Runtime, and folds its outcome into a
 * digest — so a sweep is bit-identical at any --jobs and any single
 * failure replays from its case id alone. Violations are shrunk to a
 * minimal reproducer (latest failing crash point within a bounded
 * window, then a ddmin-style pass over the surviving-line set) and
 * rendered as a `whisper_cli crashfuzz --replay` command line.
 */

#ifndef WHISPER_FUZZ_CRASH_FUZZ_HH
#define WHISPER_FUZZ_CRASH_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/harness.hh"
#include "pm/fault_plan.hh"

namespace whisper::fuzz
{

/** Workload shape shared by every case of a sweep. */
struct FuzzConfig
{
    std::uint64_t opsPerThread = 24; //!< per worker thread
    std::size_t poolBytes = 48 << 20;
    std::uint64_t appSeed = 7;       //!< AppConfig::seed for every case
    std::uint64_t sweepSeed = 0x5eedF00d; //!< derives per-case params
    unsigned threads = 1; //!< racing threads (>1: MOD/Hybrid only)
    /**
     * Media-fault dimension: each case additionally draws a seeded
     * pm::FaultPlan (poison count x tear probability x transient read
     * faults) resolved against the crash's dirty-line set. Recovery
     * then runs scrub-first; losses must surface as Degraded entries,
     * never as silent corruption or panics.
     */
    bool faults = false;
    /**
     * Run every case (and the profile pass) with the full txlib
     * elision policy enabled (txlib/elision.hh): the sweep then
     * proves the elided fences/flushes were really redundant — same
     * zero-violation contract over a different (smaller) op schedule.
     */
    bool elide = false;
    /**
     * Durable-linearizability dimension (src/lincheck/): the case runs
     * a recorded KV workload over the app's lincheck surface instead
     * of run(), probes every key after recovery and demands a witness
     * linearization (completed ops + a subset of pending ops, every
     * durability-fence-covered op inside the pre-crash prefix) per
     * key. Violations become `lincheck` VerifyReport entries and a
     * minimized history dump; an exhausted search budget degrades to
     * `lincheck-budget`. Off by default — with lincheck false, every
     * case and digest is bit-identical to a pre-lincheck build.
     */
    bool lincheck = false;
};

/** One fully-resolved fuzz case (derivable from its id alone). */
struct FuzzCase
{
    std::string app;
    std::uint64_t caseId = 0;
    std::uint64_t crashAt = 0; //!< global PM-op index the cut precedes
    /**
     * How the cut resolves and how the racing threads interleave:
     * seed picks the survivor set, schedule seeds the SchedGate.
     */
    core::CrashOptions crash;
    bool hard = false; //!< crashHard(): nothing dirty survives
    /** Media faults riding the cut (none() unless FuzzConfig::faults). */
    pm::FaultPlan fault;
};

/** What one case did and found. */
struct CaseOutcome
{
    bool fired = false;        //!< crash point hit before workload end
    std::uint64_t opIndex = 0; //!< op cut short (ops seen when !fired)
    bool ok = true;            //!< invariants + verifyRecovered held
    std::string why;           //!< first violated invariant (named)
    std::uint64_t digest = 0;  //!< deterministic outcome fingerprint
    std::uint64_t imageHash = 0; //!< post-recovery arch-image hash
    std::vector<LineAddr> survivors; //!< dirty lines the crash kept
    /** Scrub declared a named, tolerated loss (fault cases only). */
    bool degraded = false;
    std::uint64_t linesTorn = 0;      //!< word-torn survivor lines
    std::uint64_t linesPoisoned = 0;  //!< lines lost to media
    std::uint64_t transientFaults = 0; //!< retried reads (counted only)
    /** @{ \name Lincheck dimension (FuzzConfig::lincheck only) */
    bool lincheckRan = false;
    bool lincheckOk = true;       //!< every key found a witness
    bool lincheckBudget = false;  //!< some key degraded to lincheck-budget
    std::uint64_t lincheckKeys = 0;       //!< keys checked
    std::uint64_t lincheckViolations = 0; //!< keys without a witness
    std::string lincheckDump; //!< minimized history file (violations)
    /** @} */
    /** Merged scrub + invariant + recovery report (for --json). */
    core::VerifyReport report;
};

/** A shrunk, replayable violation. */
struct Reproducer
{
    FuzzCase c;                      //!< with the shrunk crash point
    std::vector<LineAddr> survivors; //!< shrunk surviving-line set
    std::string why;
    std::string command; //!< whisper_cli crashfuzz --replay ... line
};

/** Per-application sweep summary. */
struct AppSweepReport
{
    std::string app;
    std::uint64_t totalPmOps = 0; //!< profiled workload op count
    std::uint64_t casesRun = 0;
    std::uint64_t casesFired = 0; //!< crash point inside the workload
    std::uint64_t violations = 0;
    std::uint64_t casesDegraded = 0; //!< named media loss, tolerated
    std::uint64_t lincheckViolations = 0; //!< cases lacking a witness
    std::uint64_t lincheckBudget = 0;     //!< cases budget-degraded
    std::uint64_t digest = 0; //!< fold of case digests in id order
    std::vector<Reproducer> reproducers; //!< shrunk, capped
    /** Per-case merged reports in id order (SweepOptions::keepReports). */
    std::vector<core::VerifyReport> caseReports;
};

/** Sweep shape. */
struct SweepOptions
{
    std::uint64_t cases = 256; //!< cases per application
    unsigned jobs = 1;         //!< worker threads (0 = hardware)
    std::vector<std::string> apps; //!< empty = every registered app
    FuzzConfig config;
    bool shrinkViolations = true;
    std::uint64_t maxReproducers = 4; //!< shrink at most this many
    bool keepReports = false; //!< retain per-case VerifyReports (--json)
};

/**
 * Profiling pass: run @p app's workload under a counting (never
 * firing) crash plan and return the total number of PM ops it issues.
 * Crash points are drawn from [0, total). With config.threads > 1 the
 * profile runs under a sweep-seed-derived gate schedule; a case under
 * its own schedule may issue slightly more or fewer ops (end-of-run
 * grace residue), so a tail crash point occasionally fails to fire —
 * that case simply counts as unfired.
 */
std::uint64_t profilePmOps(const std::string &app,
                           const FuzzConfig &config);

/**
 * Derive case @p case_id for @p app. @p total_pm_ops is the
 * profilePmOps() result; the crash point is reduced into it.
 */
FuzzCase deriveCase(const std::string &app, std::uint64_t case_id,
                    std::uint64_t total_pm_ops,
                    const FuzzConfig &config);

/**
 * Run one case end to end: setup, armed workload, crash resolution,
 * recovery, invariant checks. @p survivor_override replaces the
 * seeded survivor pick (the shrinker's handle); @p crash_at_override
 * (anything but ~0) replaces the case's crash point.
 */
CaseOutcome runCase(const FuzzCase &c, const FuzzConfig &config,
                    const std::vector<LineAddr> *survivor_override =
                        nullptr,
                    std::uint64_t crash_at_override =
                        ~std::uint64_t(0));

/**
 * Shrink a failing case: probe a bounded window after the crash point
 * for the latest still-failing op index, then ddmin the surviving
 * lines down to a (local) minimum that still violates an invariant.
 */
Reproducer shrink(const FuzzCase &c, const CaseOutcome &outcome,
                  const FuzzConfig &config);

/** The `whisper_cli crashfuzz --replay` line reproducing a case. */
std::string replayCommand(const FuzzCase &c,
                          const std::vector<LineAddr> &survivors,
                          const FuzzConfig &config);

/**
 * Fan the sweep out over a deterministic thread pool; one report per
 * app, cases folded in id order (bit-identical at any job count).
 */
std::vector<AppSweepReport> sweep(const SweepOptions &options);

/**
 * Register the "faulty" demo application: a native-layer app with a
 * deliberate ordering bug (two counters updated in separate epochs
 * with an equality invariant between them). The fuzzer must find and
 * shrink it; it proves the pipeline end to end. Idempotent; not part
 * of the suite registry.
 */
void registerFaultyApp();

} // namespace whisper::fuzz

#endif // WHISPER_FUZZ_CRASH_FUZZ_HH

#include "fuzz/crash_fuzz.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include <atomic>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/app.hh"
#include "core/runtime.hh"
#include "lincheck/checker.hh"
#include "lincheck/history_io.hh"
#include "lincheck/recorder.hh"
#include "txlib/elision.hh"

namespace whisper::fuzz
{

namespace
{

/** splitmix64 finalizer: the case-derivation and digest mixer. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    return mix64(h + v);
}

/** FNV-1a so the app name perturbs the case stream. */
std::uint64_t
hashName(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char ch : s)
        h = (h ^ static_cast<std::uint8_t>(ch)) * 0x100000001b3ull;
    return h;
}

core::AppConfig
caseAppConfig(const FuzzConfig &config)
{
    core::AppConfig cfg;
    cfg.threads = config.threads < 1 ? 1 : config.threads;
    cfg.opsPerThread = config.opsPerThread;
    cfg.seed = config.appSeed;
    cfg.poolBytes = config.poolBytes;
    cfg.recordVolatile = false;
    return cfg;
}

/** Survival-rate classes a case draws from (index 0 = crashHard). */
constexpr double kSurvivalClasses[] = {0.0, 0.1, 0.25, 0.5,
                                       0.75, 0.9, 0.99};
constexpr std::size_t kSurvivalClassCount =
    sizeof(kSurvivalClasses) / sizeof(kSurvivalClasses[0]);

/** Fault-dimension grids (FuzzConfig::faults). All-zero combinations
 *  degenerate to plain crash cases, keeping a control group inside
 *  every fault sweep. */
constexpr std::uint32_t kPoisonClasses[] = {0, 1, 2, 4};
constexpr double kTearClasses[] = {0.0, 0.25, 0.5};
constexpr std::uint32_t kTransientClasses[] = {0, 7, 31};

/** Racing threads are only meaningful where disjoint updates commute. */
void
requireGateable(const core::WhisperApp &app, unsigned threads)
{
    panic_if(threads > 1 &&
                 app.layer() != core::AccessLayer::LibMod &&
                 app.layer() != core::AccessLayer::Hybrid,
             "multi-threaded crash fuzzing needs the MOD or Hybrid "
             "layer, not %s", app.name().c_str());
}

/**
 * Run the (possibly armed) workload on every thread, gate-disciplined;
 * reports whether the crash point fired and the cut's global op index.
 * Threads that finish leave the gate's draw set so the others make
 * progress; the firing thread's throw opens the gate for the rest.
 */
void
runArmed(core::Runtime &rt, core::WhisperApp &app, unsigned threads,
         bool &fired, std::uint64_t &op_index)
{
    std::atomic<bool> hit{false};
    std::atomic<std::uint64_t> at{0};
    rt.runThreads(threads, [&](pm::PmContext &ctx, ThreadId tid) {
        try {
            app.run(rt, ctx, tid);
        } catch (const pm::CrashPointReached &cut) {
            hit.store(true, std::memory_order_relaxed);
            at.store(cut.opIndex, std::memory_order_relaxed);
        }
        if (pm::SchedGate *gate = ctx.schedGate())
            gate->deactivate(tid);
    });
    fired = hit.load(std::memory_order_relaxed);
    op_index = fired ? at.load(std::memory_order_relaxed)
                     : rt.pmOpsSeen();
}

/** @{ \name Lincheck dimension (FuzzConfig::lincheck)
 *
 * The case runs a generated KV workload over the app's lincheck
 * surface (per-thread key partitions, so per-key subhistories are
 * single-writer and verdicts are schedule-deterministic), records
 * every invoke/response plus fence coverage, and after recovery asks
 * the checker for a witness linearization per key.
 */

/** Keys per thread: small enough that keys repeat across ops. */
constexpr std::uint64_t kLcKeysPerThread = 12;

struct LcOp {
    lincheck::OpKind kind;
    std::uint64_t key;
    std::uint64_t arg;
};

core::WorkloadKeymap
lincheckKeymap(const core::AppConfig &cfg)
{
    core::WorkloadKeymap map;
    map.keys = kLcKeysPerThread * cfg.threads;
    map.threads = cfg.threads;
    map.insertsPerThread = 0;
    return map;
}

void
requireLincheckable(const core::WhisperApp &app)
{
    panic_if(!app.supportsLincheck(),
             "lincheck fuzzing needs the lincheck workload surface, "
             "which %s does not implement", app.name().c_str());
}

/**
 * Per-thread op plans, fixed by (app seed, tid) alone: the same ops
 * run in the profile pass and in every case regardless of schedule,
 * so profiled PM-op totals match the cases' op streams.
 */
std::vector<std::vector<LcOp>>
lincheckPlan(const core::WhisperApp &app, const core::AppConfig &cfg,
             const core::WorkloadKeymap &map)
{
    std::vector<std::vector<LcOp>> plan(cfg.threads);
    const bool removes = app.workloadHasRemove();
    for (unsigned t = 0; t < cfg.threads; t++) {
        const ThreadId tid = static_cast<ThreadId>(t);
        Rng rng(mix64(cfg.seed ^ (0x11c0de00ull + tid)));
        plan[t].reserve(cfg.opsPerThread);
        for (std::uint64_t i = 0; i < cfg.opsPerThread; i++) {
            LcOp op;
            op.key = map.lo(tid) + rng.next(kLcKeysPerThread);
            op.arg = 0;
            const std::uint64_t roll = rng.next(100);
            if (roll < 35) {
                op.kind = lincheck::OpKind::Get;
            } else if (roll < 70 || (roll >= 90 && !removes)) {
                op.kind = lincheck::OpKind::Put;
                op.arg = rng();
            } else if (roll < 90) {
                op.kind = lincheck::OpKind::Rmw;
                op.arg = rng.next(1000) + 1;
            } else {
                op.kind = lincheck::OpKind::Remove;
            }
            plan[t].push_back(op);
        }
    }
    return plan;
}

/**
 * Gate-disciplined armed run of the lincheck op plans. Mirrors
 * runArmed(); additionally records invoke/response events. A thread
 * stops recording the moment one of its own PM ops is dropped (the
 * machine is off; its later results never reached the pool) — the
 * drop delta is this thread's own, so the taint point is
 * schedule-deterministic, unlike a racy crashInjected() read. The
 * first tainted op stays recorded as pending: the checker may include
 * its (possibly partial) effect or drop it.
 */
void
runLincheckOps(core::Runtime &rt, core::WhisperApp &app,
               const std::vector<std::vector<LcOp>> &plan,
               unsigned threads, lincheck::HistoryRecorder *rec,
               bool &fired, std::uint64_t &op_index)
{
    std::atomic<bool> hit{false};
    std::atomic<std::uint64_t> at{0};
    rt.runThreads(threads, [&](pm::PmContext &ctx, ThreadId tid) {
        bool tainted = false;
        try {
            for (const LcOp &op : plan[tid]) {
                std::size_t handle = 0;
                if (rec && !tainted) {
                    handle =
                        rec->invoke(tid, op.kind, op.key, op.arg);
                }
                const std::uint64_t dropped0 = ctx.droppedPmOps();
                bool found = false;
                std::uint64_t value = 0;
                switch (op.kind) {
                  case lincheck::OpKind::Get:
                    found = app.workloadProbe(ctx, tid, op.key, value);
                    break;
                  case lincheck::OpKind::Put:
                    app.workloadPut(ctx, tid, op.key, op.arg);
                    break;
                  case lincheck::OpKind::Rmw:
                    found = app.workloadRmw(ctx, tid, op.key, op.arg);
                    break;
                  case lincheck::OpKind::Remove:
                    found = app.workloadRemove(ctx, tid, op.key);
                    break;
                }
                if (rec && !tainted) {
                    if (ctx.droppedPmOps() != dropped0)
                        tainted = true; // leave the op pending
                    else
                        rec->response(tid, handle, found, value);
                }
            }
            // No workloadThreadDone() epilogue: the case power-cuts
            // the pool right after this loop anyway, and the MOD
            // epilogue flips the thread's GC online flag outside any
            // gate turn — a wall-clock race that makes another
            // thread's reclaim count (and so the global PM-op total)
            // nondeterministic. Recovery sweeps the unreclaimed
            // backlog, exactly as after any mid-run cut.
        } catch (const pm::CrashPointReached &cut) {
            hit.store(true, std::memory_order_relaxed);
            at.store(cut.opIndex, std::memory_order_relaxed);
        }
        if (pm::SchedGate *gate = ctx.schedGate())
            gate->deactivate(tid);
    });
    fired = hit.load(std::memory_order_relaxed);
    op_index = fired ? at.load(std::memory_order_relaxed)
                     : rt.pmOpsSeen();
}

/** Probe every key and report it to the recorder. */
void
probeKeys(core::Runtime &rt, core::WhisperApp &app,
          const core::WorkloadKeymap &map,
          lincheck::HistoryRecorder &rec, bool recovered)
{
    for (unsigned t = 0; t < map.threads; t++) {
        const ThreadId tid = static_cast<ThreadId>(t);
        for (std::uint64_t i = 0; i < map.perThread(); i++) {
            const std::uint64_t key = map.lo(tid) + i;
            std::uint64_t value = 0;
            const bool found =
                app.workloadProbe(rt.ctx(tid), tid, key, value);
            if (recovered)
                rec.noteRecovered(key, found, value);
            else
                rec.noteInitial(key, found, value);
        }
    }
}

/**
 * Per-violation dump throttle (the buddy-recovery warn idiom): the
 * first few violating cases each warn one line with the dump path,
 * then a single suppression note — a 512-case sweep stays readable.
 */
std::atomic<unsigned> lincheckDumpWarns{0};
constexpr unsigned kLincheckDumpWarnCap = 4;

std::string
lincheckDumpPath(const FuzzCase &c)
{
    const char *dir = std::getenv("TMPDIR");
    std::string path = dir && *dir ? dir : "/tmp";
    if (!path.empty() && path.back() == '/')
        path.pop_back();
    path += "/whisper-lincheck-" + c.app + "-" +
            std::to_string(c.caseId) + ".hist";
    return path;
}

/** @} */

/** Post-recovery architectural-image fingerprint (replay identity). */
std::uint64_t
imageHash(const pm::PmPool &pool)
{
    const std::uint8_t *base = pool.archBase();
    std::uint64_t h = 0x1316171ull;
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < pool.size(); i++) {
        word = (word << 8) | base[i];
        if ((i & 7) == 7) {
            h = fold(h, word);
            word = 0;
        }
    }
    return fold(h, word);
}

} // namespace

std::uint64_t
profilePmOps(const std::string &app, const FuzzConfig &config)
{
    // Racing pool workers store the same value, so the relaxed
    // atomic policy write is race-free across a sweep.
    txlib::setElisionPolicy(config.elide ? txlib::kElideAll
                                         : txlib::kElideNone);
    const core::AppConfig cfg = caseAppConfig(config);
    core::Runtime rt(cfg.poolBytes, cfg.threads, false);
    std::unique_ptr<core::WhisperApp> a = core::createApp(app, cfg);
    requireGateable(*a, cfg.threads);
    bool fired = false;
    std::uint64_t ops = 0;
    if (config.lincheck) {
        requireLincheckable(*a);
        const core::WorkloadKeymap map = lincheckKeymap(cfg);
        a->workloadSetup(rt, map);
        rt.clearTraces();
        rt.installCrashPlan(cfg.threads,
                            mix64(config.sweepSeed ^ hashName(app)));
        const std::vector<std::vector<LcOp>> plan =
            lincheckPlan(*a, cfg, map);
        runLincheckOps(rt, *a, plan, cfg.threads, nullptr, fired,
                       ops);
        return ops;
    }
    a->setup(rt);
    rt.clearTraces();
    // Counts only; crashAt stays at "never". The gate schedule is
    // fixed per (sweep seed, app) so the profile is reproducible.
    rt.installCrashPlan(cfg.threads,
                        mix64(config.sweepSeed ^ hashName(app)));
    runArmed(rt, *a, cfg.threads, fired, ops);
    return ops;
}

FuzzCase
deriveCase(const std::string &app, std::uint64_t case_id,
           std::uint64_t total_pm_ops, const FuzzConfig &config)
{
    FuzzCase c;
    c.app = app;
    c.caseId = case_id;
    std::uint64_t h =
        mix64(config.sweepSeed ^ hashName(app)) + case_id;
    const std::uint64_t h1 = mix64(h);
    const std::uint64_t h2 = mix64(h1);
    const std::uint64_t h3 = mix64(h2);
    c.crashAt = total_pm_ops ? h1 % total_pm_ops : 0;
    c.crash.seed = h2;
    const std::size_t cls = h3 % kSurvivalClassCount;
    c.hard = cls == 0;
    c.crash.survival = kSurvivalClasses[cls];
    c.crash.threads = config.threads < 1 ? 1 : config.threads;
    c.crash.schedule = mix64(h3);
    if (config.faults) {
        // Extend the hash chain; the pre-fault parameters above are
        // untouched, so case K of a fault sweep crashes at the same
        // op as case K of the plain sweep.
        const std::uint64_t h4 = mix64(h3 ^ 0xFA017ull);
        const std::uint64_t h5 = mix64(h4);
        const std::uint64_t h6 = mix64(h5);
        const std::uint64_t h7 = mix64(h6);
        c.fault.seed = h4;
        c.fault.poisonCount =
            kPoisonClasses[h5 % (sizeof(kPoisonClasses) / 4)];
        c.fault.tearProb =
            kTearClasses[h6 % (sizeof(kTearClasses) / 8)];
        c.fault.transientEvery =
            kTransientClasses[h7 % (sizeof(kTransientClasses) / 4)];
    }
    return c;
}

CaseOutcome
runCase(const FuzzCase &c, const FuzzConfig &config,
        const std::vector<LineAddr> *survivor_override,
        std::uint64_t crash_at_override)
{
    txlib::setElisionPolicy(config.elide ? txlib::kElideAll
                                         : txlib::kElideNone);
    const core::AppConfig cfg = caseAppConfig(config);
    const unsigned threads = c.crash.threads < 1 ? 1 : c.crash.threads;
    core::Runtime rt(cfg.poolBytes, threads, false);
    std::unique_ptr<core::WhisperApp> app =
        core::createApp(c.app, cfg);
    requireGateable(*app, threads);
    lincheck::HistoryRecorder rec;
    core::WorkloadKeymap lcMap;
    if (config.lincheck) {
        requireLincheckable(*app);
        lcMap = lincheckKeymap(cfg);
        app->workloadSetup(rt, lcMap);
        // Enable before the baseline probes: noteInitial() is a no-op
        // on a disabled recorder.
        rec.enable(threads);
        probeKeys(rt, *app, lcMap, rec, false);
    } else {
        app->setup(rt);
    }
    rt.clearTraces();

    const std::uint64_t crash_at =
        crash_at_override != ~std::uint64_t(0) ? crash_at_override
                                               : c.crashAt;
    rt.installCrashPlan(threads, c.crash.schedule);
    rt.armCrashPoint(crash_at);
    if (!c.fault.none())
        rt.pool().setFaultPlan(c.fault);

    CaseOutcome out;
    if (config.lincheck) {
        const std::vector<std::vector<LcOp>> plan =
            lincheckPlan(*app, cfg, lcMap);
        for (ThreadId tid = 0; tid < rt.maxThreads(); tid++)
            rt.ctx(tid).setFenceObserver(&rec);
        runLincheckOps(rt, *app, plan, threads, &rec, out.fired,
                       out.opIndex);
    } else {
        runArmed(rt, *app, threads, out.fired, out.opIndex);
    }

    // Resolve the power cut. The survivor set is either dictated (the
    // shrinker), seeded (the sweep), or empty (crashHard class).
    if (survivor_override) {
        out.survivors = *survivor_override;
    } else if (!c.hard) {
        Rng rng(c.crash.seed);
        out.survivors =
            rt.pool().pickSurvivors(rng, c.crash.survival);
    }
    pm::FaultResolution faults;
    if (!c.fault.none())
        faults = rt.pool().resolveFaults(c.fault, out.survivors);
    if (faults.none())
        rt.crashWithSurvivors(out.survivors);
    else
        rt.crashWithFaults(out.survivors, faults);

    // The machine is back on: recovery runs un-counted. Crash plans
    // must be detached BEFORE the scrub — a fired plan keeps dropping
    // PM mutations, which would silently discard the scrub's repairs.
    for (ThreadId tid = 0; tid < rt.maxThreads(); tid++) {
        rt.ctx(tid).setCrashPlan(nullptr);
        // Likewise the fence observer: recovery's fences must not
        // extend the recorded durability coverage.
        rt.ctx(tid).setFenceObserver(nullptr);
    }

    core::VerifyReport verdict = app->scrubRecovered(rt);
    app->recover(rt);

    const core::VerifyReport invariants =
        app->checkRecoveryInvariants(rt);
    verdict.merge(invariants);
    if (invariants.ok())
        verdict.merge(app->verifyRecovered(rt));

    lincheck::CheckResult lc;
    if (config.lincheck) {
        // Every case crashes (at the armed point or at workload end),
        // so the history is a crashed one either way.
        rec.setCrashed(true);
        probeKeys(rt, *app, lcMap, rec, true);
        const lincheck::History hist = rec.finish();
        lc = lincheck::check(hist);
        out.lincheckRan = true;
        out.lincheckOk = lc.ok;
        out.lincheckBudget = lc.budgetExhausted;
        out.lincheckKeys = lc.keys.size();
        // A prior Degraded entry (scrub-named media loss) licenses a
        // missing witness the same way it licenses a verifyRecovered
        // violation: the data really is gone, and the scrub said so.
        const bool excused = verdict.degraded();
        for (const lincheck::KeyVerdict &kv : lc.keys) {
            if (kv.ok)
                continue;
            out.lincheckViolations++;
            char head[40];
            std::snprintf(head, sizeof(head), "key 0x%llx: ",
                          (unsigned long long)kv.key);
            verdict.fail("lincheck", head + kv.why);
        }
        if (lc.budgetExhausted)
            verdict.degrade("lincheck-budget",
                            "witness search budget exhausted; "
                            "verdict incomplete, not a violation");
        if (!lc.ok && !excused) {
            const std::string path = lincheckDumpPath(c);
            if (lincheck::writeHistoryFile(
                    path, lincheck::minimizeViolation(hist)))
                out.lincheckDump = path;
            const unsigned seen = lincheckDumpWarns.fetch_add(
                1, std::memory_order_relaxed);
            if (seen < kLincheckDumpWarnCap) {
                warn("lincheck: %s case %llu: %s (history: %s)",
                     c.app.c_str(), (unsigned long long)c.caseId,
                     lc.brief().c_str(), path.c_str());
            } else if (seen == kLincheckDumpWarnCap) {
                warn("lincheck: more violations; further history "
                     "dump notices suppressed");
            }
        }
    }

    out.degraded = verdict.degraded();
    // A Violation is a finding unless the scrub declared a named loss
    // that explains it; silent corruption (violation with no Degraded
    // entry) always counts.
    out.ok = verdict.ok() || out.degraded;
    if (!verdict.ok()) {
        out.why = verdict.brief().empty() ? "recovery check failed"
                                          : verdict.brief();
    }
    out.imageHash = imageHash(rt.pool());
    out.linesTorn = rt.pool().stats().linesTorn;
    out.linesPoisoned = rt.pool().stats().linesPoisoned;
    out.transientFaults = rt.pool().stats().transientFaults;

    std::uint64_t h = fold(hashName(c.app), c.caseId);
    h = fold(h, crash_at);
    h = fold(h, out.fired ? 1 : 0);
    h = fold(h, out.opIndex);
    h = fold(h, out.survivors.size());
    for (const LineAddr line : out.survivors)
        h = fold(h, line);
    h = fold(h, rt.pool().stats().linesSurvivedCrash);
    h = fold(h, rt.pool().dirtyLineCount());
    h = fold(h, verdict.ok() ? 1 : 0);
    h = fold(h, hashName(out.why));
    h = fold(h, out.imageHash);
    if (!c.fault.none()) {
        // Fold the plan and its resolution: a replay that tears or
        // poisons different lines is a different case.
        h = fold(h, c.fault.seed);
        h = fold(h, c.fault.poisonCount);
        h = fold(h, static_cast<std::uint64_t>(
                        c.fault.tearProb * 256.0));
        h = fold(h, c.fault.transientEvery);
        h = fold(h, faults.torn.size());
        for (const pm::TornLine &t : faults.torn) {
            h = fold(h, t.line);
            h = fold(h, t.mask);
        }
        h = fold(h, faults.poisoned.size());
        for (const LineAddr line : faults.poisoned)
            h = fold(h, line);
        h = fold(h, out.transientFaults);
        h = fold(h, out.degraded ? 1 : 0);
    }
    if (config.lincheck) {
        // Folded only in lincheck mode so plain sweeps stay
        // bit-identical with pre-lincheck builds. Verdicts only, no
        // timestamps: CheckResult::digest() is schedule-determined.
        h = fold(h, out.lincheckOk ? 1 : 0);
        h = fold(h, out.lincheckBudget ? 1 : 0);
        h = fold(h, out.lincheckKeys);
        h = fold(h, lc.digest());
    }
    out.digest = h;
    if (std::getenv("WHISPER_FUZZ_DEBUG")) {
        std::fprintf(stderr,
                     "case %llu at=%llu op=%llu surv=%zu dirty=%llu "
                     "img=%016llx torn=%zu pois=%zu trans=%llu "
                     "digest=%016llx\n",
                     (unsigned long long)c.caseId,
                     (unsigned long long)crash_at,
                     (unsigned long long)out.opIndex,
                     out.survivors.size(),
                     (unsigned long long)rt.pool().dirtyLineCount(),
                     (unsigned long long)out.imageHash,
                     faults.torn.size(), faults.poisoned.size(),
                     (unsigned long long)out.transientFaults,
                     (unsigned long long)out.digest);
    }
    out.report = std::move(verdict);
    return out;
}

std::string
replayCommand(const FuzzCase &c,
              const std::vector<LineAddr> &survivors,
              const FuzzConfig &config)
{
    std::string cmd = "whisper_cli crashfuzz --replay " + c.app + ":" +
                      std::to_string(c.caseId);
    cmd += " --at " + std::to_string(c.crashAt);
    if (survivors.empty()) {
        cmd += " --survivors none";
    } else {
        cmd += " --survivors ";
        for (std::size_t i = 0; i < survivors.size(); i++) {
            if (i)
                cmd += ",";
            cmd += std::to_string(survivors[i]);
        }
    }
    char tail[160];
    std::snprintf(tail, sizeof(tail),
                  " --ops %" PRIu64 " --seed 0x%" PRIx64
                  " --pool-mb %zu",
                  config.opsPerThread, config.sweepSeed,
                  config.poolBytes >> 20);
    cmd += tail;
    if (c.crash.threads > 1) {
        std::snprintf(tail, sizeof(tail),
                      " --threads %u --schedule 0x%" PRIx64,
                      c.crash.threads, c.crash.schedule);
        cmd += tail;
    }
    if (!c.fault.none()) {
        std::snprintf(tail, sizeof(tail),
                      " --fault-plan 0x%" PRIx64 ":%u:%u:%u",
                      c.fault.seed, c.fault.poisonCount,
                      static_cast<unsigned>(c.fault.tearProb * 100.0 +
                                            0.5),
                      c.fault.transientEvery);
        cmd += tail;
    }
    if (config.elide)
        cmd += " --elide";
    if (config.lincheck)
        cmd += " --lincheck";
    return cmd;
}

Reproducer
shrink(const FuzzCase &c, const CaseOutcome &outcome,
       const FuzzConfig &config)
{
    panic_if(outcome.ok, "shrink() needs a failing case");

    // Phase 1: latest failing crash point inside a bounded window
    // after the found one — the closest power cut to the bug.
    constexpr std::uint64_t kProbeWindow = 24;
    FuzzCase best = c;
    for (std::uint64_t k = c.crashAt + kProbeWindow; k > c.crashAt;
         k--) {
        if (!runCase(c, config, nullptr, k).ok) {
            best.crashAt = k;
            break;
        }
    }
    CaseOutcome best_out =
        best.crashAt == c.crashAt ? outcome
                                  : runCase(best, config);
    if (best_out.ok) { // window probe not reproducible; keep original
        best.crashAt = c.crashAt;
        best_out = outcome;
    }

    // Phase 2: ddmin-lite over the surviving lines. Removing a chunk
    // keeps the failure => the chunk was irrelevant; granularity
    // doubles when no chunk can be removed.
    std::vector<LineAddr> s = best_out.survivors;
    std::string why = best_out.why;
    unsigned trials = 0;
    constexpr unsigned kTrialBudget = 48;
    std::size_t chunks = 2;
    while (s.size() >= 2 && chunks <= s.size() &&
           trials < kTrialBudget) {
        bool removed = false;
        const std::size_t chunk_len =
            (s.size() + chunks - 1) / chunks;
        for (std::size_t i = 0;
             i < chunks && trials < kTrialBudget; i++) {
            const std::size_t lo =
                std::min(i * chunk_len, s.size());
            const std::size_t hi =
                std::min(lo + chunk_len, s.size());
            if (lo == hi)
                continue;
            std::vector<LineAddr> candidate;
            candidate.reserve(s.size() - (hi - lo));
            candidate.insert(candidate.end(), s.begin(),
                             s.begin() + lo);
            candidate.insert(candidate.end(), s.begin() + hi,
                             s.end());
            trials++;
            const CaseOutcome probe =
                runCase(best, config, &candidate);
            if (!probe.ok) {
                s = candidate;
                why = probe.why;
                chunks = std::max<std::size_t>(2, chunks - 1);
                removed = true;
                break;
            }
        }
        if (!removed) {
            if (chunks >= s.size())
                break;
            chunks = std::min(s.size(), chunks * 2);
        }
    }
    // The empty set is the global minimum — take it when it fails.
    if (!s.empty() && trials < kTrialBudget + 8) {
        const std::vector<LineAddr> none;
        const CaseOutcome probe = runCase(best, config, &none);
        if (!probe.ok) {
            s = none;
            why = probe.why;
        }
    }

    Reproducer r;
    r.c = best;
    r.survivors = s;
    r.why = why;
    r.command = replayCommand(best, s, config);
    return r;
}

std::vector<AppSweepReport>
sweep(const SweepOptions &options)
{
    std::vector<std::string> apps = options.apps;
    if (apps.empty())
        apps = core::registeredApps();

    ThreadPool pool(options.jobs);
    std::vector<AppSweepReport> reports;
    reports.reserve(apps.size());

    for (const std::string &app : apps) {
        AppSweepReport report;
        report.app = app;
        report.totalPmOps = profilePmOps(app, options.config);

        const std::vector<CaseOutcome> outcomes = pool.map(
            options.cases, [&](std::size_t i) {
                const FuzzCase c =
                    deriveCase(app, i, report.totalPmOps,
                               options.config);
                return runCase(c, options.config);
            });

        std::uint64_t digest = 0x77157e5ull;
        for (std::uint64_t i = 0; i < outcomes.size(); i++) {
            const CaseOutcome &out = outcomes[i];
            report.casesRun++;
            report.casesFired += out.fired ? 1 : 0;
            report.casesDegraded += out.degraded ? 1 : 0;
            if (out.lincheckRan) {
                report.lincheckBudget += out.lincheckBudget ? 1 : 0;
                // Count only unexcused misses: a witness lost to
                // scrub-named media loss rides the degrade convention.
                report.lincheckViolations +=
                    (!out.lincheckOk && !out.ok) ? 1 : 0;
            }
            digest = fold(digest, out.digest);
            if (options.keepReports)
                report.caseReports.push_back(out.report);
            if (out.ok)
                continue;
            report.violations++;
            if (options.shrinkViolations &&
                report.reproducers.size() <
                    options.maxReproducers) {
                const FuzzCase c = deriveCase(
                    app, i, report.totalPmOps, options.config);
                report.reproducers.push_back(
                    shrink(c, out, options.config));
            }
        }
        report.digest = digest;
        reports.push_back(std::move(report));
    }
    return reports;
}

} // namespace whisper::fuzz

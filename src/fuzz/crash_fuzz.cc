#include "fuzz/crash_fuzz.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/app.hh"
#include "core/runtime.hh"

namespace whisper::fuzz
{

namespace
{

/** splitmix64 finalizer: the case-derivation and digest mixer. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    return mix64(h + v);
}

/** FNV-1a so the app name perturbs the case stream. */
std::uint64_t
hashName(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char ch : s)
        h = (h ^ static_cast<std::uint8_t>(ch)) * 0x100000001b3ull;
    return h;
}

core::AppConfig
caseAppConfig(const FuzzConfig &config)
{
    core::AppConfig cfg;
    cfg.threads = 1; // deterministic PM-op order
    cfg.opsPerThread = config.opsPerThread;
    cfg.seed = config.appSeed;
    cfg.poolBytes = config.poolBytes;
    cfg.recordVolatile = false;
    return cfg;
}

/** Survival-rate classes a case draws from (index 0 = crashHard). */
constexpr double kSurvivalClasses[] = {0.0, 0.1, 0.25, 0.5,
                                       0.75, 0.9, 0.99};
constexpr std::size_t kSurvivalClassCount =
    sizeof(kSurvivalClasses) / sizeof(kSurvivalClasses[0]);

} // namespace

std::uint64_t
profilePmOps(const std::string &app, const FuzzConfig &config)
{
    const core::AppConfig cfg = caseAppConfig(config);
    core::Runtime rt(cfg.poolBytes, 1, false);
    std::unique_ptr<core::WhisperApp> a = core::createApp(app, cfg);
    a->setup(rt);
    rt.clearTraces();
    rt.installCrashPlan(); // counts; crashAt stays at "never"
    a->run(rt, rt.ctx(0), 0);
    return rt.pmOpsSeen();
}

FuzzCase
deriveCase(const std::string &app, std::uint64_t case_id,
           std::uint64_t total_pm_ops, const FuzzConfig &config)
{
    FuzzCase c;
    c.app = app;
    c.caseId = case_id;
    std::uint64_t h =
        mix64(config.sweepSeed ^ hashName(app)) + case_id;
    const std::uint64_t h1 = mix64(h);
    const std::uint64_t h2 = mix64(h1);
    const std::uint64_t h3 = mix64(h2);
    c.crashAt = total_pm_ops ? h1 % total_pm_ops : 0;
    c.crashSeed = h2;
    const std::size_t cls = h3 % kSurvivalClassCount;
    c.hard = cls == 0;
    c.survival = kSurvivalClasses[cls];
    return c;
}

CaseOutcome
runCase(const FuzzCase &c, const FuzzConfig &config,
        const std::vector<LineAddr> *survivor_override,
        std::uint64_t crash_at_override)
{
    const core::AppConfig cfg = caseAppConfig(config);
    core::Runtime rt(cfg.poolBytes, 1, false);
    std::unique_ptr<core::WhisperApp> app =
        core::createApp(c.app, cfg);
    app->setup(rt);
    rt.clearTraces();

    const std::uint64_t crash_at =
        crash_at_override != ~std::uint64_t(0) ? crash_at_override
                                               : c.crashAt;
    rt.installCrashPlan();
    rt.armCrashPoint(crash_at);

    CaseOutcome out;
    try {
        app->run(rt, rt.ctx(0), 0);
        out.fired = false;
        out.opIndex = rt.pmOpsSeen();
    } catch (const pm::CrashPointReached &cut) {
        out.fired = true;
        out.opIndex = cut.opIndex;
    }

    // Resolve the power cut. The survivor set is either dictated (the
    // shrinker), seeded (the sweep), or empty (crashHard class).
    if (survivor_override) {
        out.survivors = *survivor_override;
    } else if (!c.hard) {
        Rng rng(c.crashSeed);
        out.survivors = rt.pool().pickSurvivors(rng, c.survival);
    }
    rt.crashWithSurvivors(out.survivors);

    // The machine is back on: recovery runs un-counted and un-poisoned.
    for (ThreadId tid = 0; tid < rt.maxThreads(); tid++)
        rt.ctx(tid).setCrashPlan(nullptr);

    app->recover(rt);

    std::string why;
    const bool invariants_ok = app->checkRecoveryInvariants(rt, &why);
    const bool recovered_ok =
        invariants_ok ? app->verifyRecovered(rt) : false;
    out.ok = invariants_ok && recovered_ok;
    if (!invariants_ok)
        out.why = why.empty() ? "layer recovery invariant violated"
                              : why;
    else if (!recovered_ok)
        out.why = "verifyRecovered failed";

    std::uint64_t h = fold(hashName(c.app), c.caseId);
    h = fold(h, crash_at);
    h = fold(h, out.fired ? 1 : 0);
    h = fold(h, out.opIndex);
    h = fold(h, out.survivors.size());
    for (const LineAddr line : out.survivors)
        h = fold(h, line);
    h = fold(h, rt.pool().stats().linesSurvivedCrash);
    h = fold(h, rt.pool().dirtyLineCount());
    h = fold(h, out.ok ? 1 : 0);
    h = fold(h, hashName(out.why));
    out.digest = h;
    return out;
}

std::string
replayCommand(const FuzzCase &c,
              const std::vector<LineAddr> &survivors,
              const FuzzConfig &config)
{
    std::string cmd = "whisper_cli crashfuzz --replay " + c.app + ":" +
                      std::to_string(c.caseId);
    cmd += " --at " + std::to_string(c.crashAt);
    if (survivors.empty()) {
        cmd += " --survivors none";
    } else {
        cmd += " --survivors ";
        for (std::size_t i = 0; i < survivors.size(); i++) {
            if (i)
                cmd += ",";
            cmd += std::to_string(survivors[i]);
        }
    }
    char tail[96];
    std::snprintf(tail, sizeof(tail),
                  " --ops %" PRIu64 " --seed 0x%" PRIx64
                  " --pool-mb %zu",
                  config.opsPerThread, config.sweepSeed,
                  config.poolBytes >> 20);
    return cmd + tail;
}

Reproducer
shrink(const FuzzCase &c, const CaseOutcome &outcome,
       const FuzzConfig &config)
{
    panic_if(outcome.ok, "shrink() needs a failing case");

    // Phase 1: latest failing crash point inside a bounded window
    // after the found one — the closest power cut to the bug.
    constexpr std::uint64_t kProbeWindow = 24;
    FuzzCase best = c;
    for (std::uint64_t k = c.crashAt + kProbeWindow; k > c.crashAt;
         k--) {
        if (!runCase(c, config, nullptr, k).ok) {
            best.crashAt = k;
            break;
        }
    }
    CaseOutcome best_out =
        best.crashAt == c.crashAt ? outcome
                                  : runCase(best, config);
    if (best_out.ok) { // window probe not reproducible; keep original
        best.crashAt = c.crashAt;
        best_out = outcome;
    }

    // Phase 2: ddmin-lite over the surviving lines. Removing a chunk
    // keeps the failure => the chunk was irrelevant; granularity
    // doubles when no chunk can be removed.
    std::vector<LineAddr> s = best_out.survivors;
    std::string why = best_out.why;
    unsigned trials = 0;
    constexpr unsigned kTrialBudget = 48;
    std::size_t chunks = 2;
    while (s.size() >= 2 && chunks <= s.size() &&
           trials < kTrialBudget) {
        bool removed = false;
        const std::size_t chunk_len =
            (s.size() + chunks - 1) / chunks;
        for (std::size_t i = 0;
             i < chunks && trials < kTrialBudget; i++) {
            const std::size_t lo =
                std::min(i * chunk_len, s.size());
            const std::size_t hi =
                std::min(lo + chunk_len, s.size());
            if (lo == hi)
                continue;
            std::vector<LineAddr> candidate;
            candidate.reserve(s.size() - (hi - lo));
            candidate.insert(candidate.end(), s.begin(),
                             s.begin() + lo);
            candidate.insert(candidate.end(), s.begin() + hi,
                             s.end());
            trials++;
            const CaseOutcome probe =
                runCase(best, config, &candidate);
            if (!probe.ok) {
                s = candidate;
                why = probe.why;
                chunks = std::max<std::size_t>(2, chunks - 1);
                removed = true;
                break;
            }
        }
        if (!removed) {
            if (chunks >= s.size())
                break;
            chunks = std::min(s.size(), chunks * 2);
        }
    }
    // The empty set is the global minimum — take it when it fails.
    if (!s.empty() && trials < kTrialBudget + 8) {
        const std::vector<LineAddr> none;
        const CaseOutcome probe = runCase(best, config, &none);
        if (!probe.ok) {
            s = none;
            why = probe.why;
        }
    }

    Reproducer r;
    r.c = best;
    r.survivors = s;
    r.why = why;
    r.command = replayCommand(best, s, config);
    return r;
}

std::vector<AppSweepReport>
sweep(const SweepOptions &options)
{
    std::vector<std::string> apps = options.apps;
    if (apps.empty())
        apps = core::registeredApps();

    ThreadPool pool(options.jobs);
    std::vector<AppSweepReport> reports;
    reports.reserve(apps.size());

    for (const std::string &app : apps) {
        AppSweepReport report;
        report.app = app;
        report.totalPmOps = profilePmOps(app, options.config);

        const std::vector<CaseOutcome> outcomes = pool.map(
            options.cases, [&](std::size_t i) {
                const FuzzCase c =
                    deriveCase(app, i, report.totalPmOps,
                               options.config);
                return runCase(c, options.config);
            });

        std::uint64_t digest = 0x77157e5ull;
        for (std::uint64_t i = 0; i < outcomes.size(); i++) {
            const CaseOutcome &out = outcomes[i];
            report.casesRun++;
            report.casesFired += out.fired ? 1 : 0;
            digest = fold(digest, out.digest);
            if (out.ok)
                continue;
            report.violations++;
            if (options.shrinkViolations &&
                report.reproducers.size() <
                    options.maxReproducers) {
                const FuzzCase c = deriveCase(
                    app, i, report.totalPmOps, options.config);
                report.reproducers.push_back(
                    shrink(c, out, options.config));
            }
        }
        report.digest = digest;
        reports.push_back(std::move(report));
    }
    return reports;
}

} // namespace whisper::fuzz

#include "fuzz/crash_fuzz.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/app.hh"
#include "core/runtime.hh"
#include "txlib/elision.hh"

namespace whisper::fuzz
{

namespace
{

/** splitmix64 finalizer: the case-derivation and digest mixer. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    return mix64(h + v);
}

/** FNV-1a so the app name perturbs the case stream. */
std::uint64_t
hashName(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char ch : s)
        h = (h ^ static_cast<std::uint8_t>(ch)) * 0x100000001b3ull;
    return h;
}

core::AppConfig
caseAppConfig(const FuzzConfig &config)
{
    core::AppConfig cfg;
    cfg.threads = config.threads < 1 ? 1 : config.threads;
    cfg.opsPerThread = config.opsPerThread;
    cfg.seed = config.appSeed;
    cfg.poolBytes = config.poolBytes;
    cfg.recordVolatile = false;
    return cfg;
}

/** Survival-rate classes a case draws from (index 0 = crashHard). */
constexpr double kSurvivalClasses[] = {0.0, 0.1, 0.25, 0.5,
                                       0.75, 0.9, 0.99};
constexpr std::size_t kSurvivalClassCount =
    sizeof(kSurvivalClasses) / sizeof(kSurvivalClasses[0]);

/** Fault-dimension grids (FuzzConfig::faults). All-zero combinations
 *  degenerate to plain crash cases, keeping a control group inside
 *  every fault sweep. */
constexpr std::uint32_t kPoisonClasses[] = {0, 1, 2, 4};
constexpr double kTearClasses[] = {0.0, 0.25, 0.5};
constexpr std::uint32_t kTransientClasses[] = {0, 7, 31};

/** Racing threads are only meaningful where disjoint updates commute. */
void
requireGateable(const core::WhisperApp &app, unsigned threads)
{
    panic_if(threads > 1 &&
                 app.layer() != core::AccessLayer::LibMod &&
                 app.layer() != core::AccessLayer::Hybrid,
             "multi-threaded crash fuzzing needs the MOD or Hybrid "
             "layer, not %s", app.name().c_str());
}

/**
 * Run the (possibly armed) workload on every thread, gate-disciplined;
 * reports whether the crash point fired and the cut's global op index.
 * Threads that finish leave the gate's draw set so the others make
 * progress; the firing thread's throw opens the gate for the rest.
 */
void
runArmed(core::Runtime &rt, core::WhisperApp &app, unsigned threads,
         bool &fired, std::uint64_t &op_index)
{
    std::atomic<bool> hit{false};
    std::atomic<std::uint64_t> at{0};
    rt.runThreads(threads, [&](pm::PmContext &ctx, ThreadId tid) {
        try {
            app.run(rt, ctx, tid);
        } catch (const pm::CrashPointReached &cut) {
            hit.store(true, std::memory_order_relaxed);
            at.store(cut.opIndex, std::memory_order_relaxed);
        }
        if (pm::SchedGate *gate = ctx.schedGate())
            gate->deactivate(tid);
    });
    fired = hit.load(std::memory_order_relaxed);
    op_index = fired ? at.load(std::memory_order_relaxed)
                     : rt.pmOpsSeen();
}

/** Post-recovery architectural-image fingerprint (replay identity). */
std::uint64_t
imageHash(const pm::PmPool &pool)
{
    const std::uint8_t *base = pool.archBase();
    std::uint64_t h = 0x1316171ull;
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < pool.size(); i++) {
        word = (word << 8) | base[i];
        if ((i & 7) == 7) {
            h = fold(h, word);
            word = 0;
        }
    }
    return fold(h, word);
}

} // namespace

std::uint64_t
profilePmOps(const std::string &app, const FuzzConfig &config)
{
    // Racing pool workers store the same value, so the relaxed
    // atomic policy write is race-free across a sweep.
    txlib::setElisionPolicy(config.elide ? txlib::kElideAll
                                         : txlib::kElideNone);
    const core::AppConfig cfg = caseAppConfig(config);
    core::Runtime rt(cfg.poolBytes, cfg.threads, false);
    std::unique_ptr<core::WhisperApp> a = core::createApp(app, cfg);
    requireGateable(*a, cfg.threads);
    a->setup(rt);
    rt.clearTraces();
    // Counts only; crashAt stays at "never". The gate schedule is
    // fixed per (sweep seed, app) so the profile is reproducible.
    rt.installCrashPlan(cfg.threads,
                        mix64(config.sweepSeed ^ hashName(app)));
    bool fired = false;
    std::uint64_t ops = 0;
    runArmed(rt, *a, cfg.threads, fired, ops);
    return ops;
}

FuzzCase
deriveCase(const std::string &app, std::uint64_t case_id,
           std::uint64_t total_pm_ops, const FuzzConfig &config)
{
    FuzzCase c;
    c.app = app;
    c.caseId = case_id;
    std::uint64_t h =
        mix64(config.sweepSeed ^ hashName(app)) + case_id;
    const std::uint64_t h1 = mix64(h);
    const std::uint64_t h2 = mix64(h1);
    const std::uint64_t h3 = mix64(h2);
    c.crashAt = total_pm_ops ? h1 % total_pm_ops : 0;
    c.crash.seed = h2;
    const std::size_t cls = h3 % kSurvivalClassCount;
    c.hard = cls == 0;
    c.crash.survival = kSurvivalClasses[cls];
    c.crash.threads = config.threads < 1 ? 1 : config.threads;
    c.crash.schedule = mix64(h3);
    if (config.faults) {
        // Extend the hash chain; the pre-fault parameters above are
        // untouched, so case K of a fault sweep crashes at the same
        // op as case K of the plain sweep.
        const std::uint64_t h4 = mix64(h3 ^ 0xFA017ull);
        const std::uint64_t h5 = mix64(h4);
        const std::uint64_t h6 = mix64(h5);
        const std::uint64_t h7 = mix64(h6);
        c.fault.seed = h4;
        c.fault.poisonCount =
            kPoisonClasses[h5 % (sizeof(kPoisonClasses) / 4)];
        c.fault.tearProb =
            kTearClasses[h6 % (sizeof(kTearClasses) / 8)];
        c.fault.transientEvery =
            kTransientClasses[h7 % (sizeof(kTransientClasses) / 4)];
    }
    return c;
}

CaseOutcome
runCase(const FuzzCase &c, const FuzzConfig &config,
        const std::vector<LineAddr> *survivor_override,
        std::uint64_t crash_at_override)
{
    txlib::setElisionPolicy(config.elide ? txlib::kElideAll
                                         : txlib::kElideNone);
    const core::AppConfig cfg = caseAppConfig(config);
    const unsigned threads = c.crash.threads < 1 ? 1 : c.crash.threads;
    core::Runtime rt(cfg.poolBytes, threads, false);
    std::unique_ptr<core::WhisperApp> app =
        core::createApp(c.app, cfg);
    requireGateable(*app, threads);
    app->setup(rt);
    rt.clearTraces();

    const std::uint64_t crash_at =
        crash_at_override != ~std::uint64_t(0) ? crash_at_override
                                               : c.crashAt;
    rt.installCrashPlan(threads, c.crash.schedule);
    rt.armCrashPoint(crash_at);
    if (!c.fault.none())
        rt.pool().setFaultPlan(c.fault);

    CaseOutcome out;
    runArmed(rt, *app, threads, out.fired, out.opIndex);

    // Resolve the power cut. The survivor set is either dictated (the
    // shrinker), seeded (the sweep), or empty (crashHard class).
    if (survivor_override) {
        out.survivors = *survivor_override;
    } else if (!c.hard) {
        Rng rng(c.crash.seed);
        out.survivors =
            rt.pool().pickSurvivors(rng, c.crash.survival);
    }
    pm::FaultResolution faults;
    if (!c.fault.none())
        faults = rt.pool().resolveFaults(c.fault, out.survivors);
    if (faults.none())
        rt.crashWithSurvivors(out.survivors);
    else
        rt.crashWithFaults(out.survivors, faults);

    // The machine is back on: recovery runs un-counted. Crash plans
    // must be detached BEFORE the scrub — a fired plan keeps dropping
    // PM mutations, which would silently discard the scrub's repairs.
    for (ThreadId tid = 0; tid < rt.maxThreads(); tid++)
        rt.ctx(tid).setCrashPlan(nullptr);

    core::VerifyReport verdict = app->scrubRecovered(rt);
    app->recover(rt);

    const core::VerifyReport invariants =
        app->checkRecoveryInvariants(rt);
    verdict.merge(invariants);
    if (invariants.ok())
        verdict.merge(app->verifyRecovered(rt));
    out.degraded = verdict.degraded();
    // A Violation is a finding unless the scrub declared a named loss
    // that explains it; silent corruption (violation with no Degraded
    // entry) always counts.
    out.ok = verdict.ok() || out.degraded;
    if (!verdict.ok()) {
        out.why = verdict.brief().empty() ? "recovery check failed"
                                          : verdict.brief();
    }
    out.imageHash = imageHash(rt.pool());
    out.linesTorn = rt.pool().stats().linesTorn;
    out.linesPoisoned = rt.pool().stats().linesPoisoned;
    out.transientFaults = rt.pool().stats().transientFaults;

    std::uint64_t h = fold(hashName(c.app), c.caseId);
    h = fold(h, crash_at);
    h = fold(h, out.fired ? 1 : 0);
    h = fold(h, out.opIndex);
    h = fold(h, out.survivors.size());
    for (const LineAddr line : out.survivors)
        h = fold(h, line);
    h = fold(h, rt.pool().stats().linesSurvivedCrash);
    h = fold(h, rt.pool().dirtyLineCount());
    h = fold(h, verdict.ok() ? 1 : 0);
    h = fold(h, hashName(out.why));
    h = fold(h, out.imageHash);
    if (!c.fault.none()) {
        // Fold the plan and its resolution: a replay that tears or
        // poisons different lines is a different case.
        h = fold(h, c.fault.seed);
        h = fold(h, c.fault.poisonCount);
        h = fold(h, static_cast<std::uint64_t>(
                        c.fault.tearProb * 256.0));
        h = fold(h, c.fault.transientEvery);
        h = fold(h, faults.torn.size());
        for (const pm::TornLine &t : faults.torn) {
            h = fold(h, t.line);
            h = fold(h, t.mask);
        }
        h = fold(h, faults.poisoned.size());
        for (const LineAddr line : faults.poisoned)
            h = fold(h, line);
        h = fold(h, out.transientFaults);
        h = fold(h, out.degraded ? 1 : 0);
    }
    out.digest = h;
    if (std::getenv("WHISPER_FUZZ_DEBUG")) {
        std::fprintf(stderr,
                     "case %llu at=%llu op=%llu surv=%zu dirty=%llu "
                     "img=%016llx torn=%zu pois=%zu trans=%llu "
                     "digest=%016llx\n",
                     (unsigned long long)c.caseId,
                     (unsigned long long)crash_at,
                     (unsigned long long)out.opIndex,
                     out.survivors.size(),
                     (unsigned long long)rt.pool().dirtyLineCount(),
                     (unsigned long long)out.imageHash,
                     faults.torn.size(), faults.poisoned.size(),
                     (unsigned long long)out.transientFaults,
                     (unsigned long long)out.digest);
    }
    out.report = std::move(verdict);
    return out;
}

std::string
replayCommand(const FuzzCase &c,
              const std::vector<LineAddr> &survivors,
              const FuzzConfig &config)
{
    std::string cmd = "whisper_cli crashfuzz --replay " + c.app + ":" +
                      std::to_string(c.caseId);
    cmd += " --at " + std::to_string(c.crashAt);
    if (survivors.empty()) {
        cmd += " --survivors none";
    } else {
        cmd += " --survivors ";
        for (std::size_t i = 0; i < survivors.size(); i++) {
            if (i)
                cmd += ",";
            cmd += std::to_string(survivors[i]);
        }
    }
    char tail[160];
    std::snprintf(tail, sizeof(tail),
                  " --ops %" PRIu64 " --seed 0x%" PRIx64
                  " --pool-mb %zu",
                  config.opsPerThread, config.sweepSeed,
                  config.poolBytes >> 20);
    cmd += tail;
    if (c.crash.threads > 1) {
        std::snprintf(tail, sizeof(tail),
                      " --threads %u --schedule 0x%" PRIx64,
                      c.crash.threads, c.crash.schedule);
        cmd += tail;
    }
    if (!c.fault.none()) {
        std::snprintf(tail, sizeof(tail),
                      " --fault-plan 0x%" PRIx64 ":%u:%u:%u",
                      c.fault.seed, c.fault.poisonCount,
                      static_cast<unsigned>(c.fault.tearProb * 100.0 +
                                            0.5),
                      c.fault.transientEvery);
        cmd += tail;
    }
    if (config.elide)
        cmd += " --elide";
    return cmd;
}

Reproducer
shrink(const FuzzCase &c, const CaseOutcome &outcome,
       const FuzzConfig &config)
{
    panic_if(outcome.ok, "shrink() needs a failing case");

    // Phase 1: latest failing crash point inside a bounded window
    // after the found one — the closest power cut to the bug.
    constexpr std::uint64_t kProbeWindow = 24;
    FuzzCase best = c;
    for (std::uint64_t k = c.crashAt + kProbeWindow; k > c.crashAt;
         k--) {
        if (!runCase(c, config, nullptr, k).ok) {
            best.crashAt = k;
            break;
        }
    }
    CaseOutcome best_out =
        best.crashAt == c.crashAt ? outcome
                                  : runCase(best, config);
    if (best_out.ok) { // window probe not reproducible; keep original
        best.crashAt = c.crashAt;
        best_out = outcome;
    }

    // Phase 2: ddmin-lite over the surviving lines. Removing a chunk
    // keeps the failure => the chunk was irrelevant; granularity
    // doubles when no chunk can be removed.
    std::vector<LineAddr> s = best_out.survivors;
    std::string why = best_out.why;
    unsigned trials = 0;
    constexpr unsigned kTrialBudget = 48;
    std::size_t chunks = 2;
    while (s.size() >= 2 && chunks <= s.size() &&
           trials < kTrialBudget) {
        bool removed = false;
        const std::size_t chunk_len =
            (s.size() + chunks - 1) / chunks;
        for (std::size_t i = 0;
             i < chunks && trials < kTrialBudget; i++) {
            const std::size_t lo =
                std::min(i * chunk_len, s.size());
            const std::size_t hi =
                std::min(lo + chunk_len, s.size());
            if (lo == hi)
                continue;
            std::vector<LineAddr> candidate;
            candidate.reserve(s.size() - (hi - lo));
            candidate.insert(candidate.end(), s.begin(),
                             s.begin() + lo);
            candidate.insert(candidate.end(), s.begin() + hi,
                             s.end());
            trials++;
            const CaseOutcome probe =
                runCase(best, config, &candidate);
            if (!probe.ok) {
                s = candidate;
                why = probe.why;
                chunks = std::max<std::size_t>(2, chunks - 1);
                removed = true;
                break;
            }
        }
        if (!removed) {
            if (chunks >= s.size())
                break;
            chunks = std::min(s.size(), chunks * 2);
        }
    }
    // The empty set is the global minimum — take it when it fails.
    if (!s.empty() && trials < kTrialBudget + 8) {
        const std::vector<LineAddr> none;
        const CaseOutcome probe = runCase(best, config, &none);
        if (!probe.ok) {
            s = none;
            why = probe.why;
        }
    }

    Reproducer r;
    r.c = best;
    r.survivors = s;
    r.why = why;
    r.command = replayCommand(best, s, config);
    return r;
}

std::vector<AppSweepReport>
sweep(const SweepOptions &options)
{
    std::vector<std::string> apps = options.apps;
    if (apps.empty())
        apps = core::registeredApps();

    ThreadPool pool(options.jobs);
    std::vector<AppSweepReport> reports;
    reports.reserve(apps.size());

    for (const std::string &app : apps) {
        AppSweepReport report;
        report.app = app;
        report.totalPmOps = profilePmOps(app, options.config);

        const std::vector<CaseOutcome> outcomes = pool.map(
            options.cases, [&](std::size_t i) {
                const FuzzCase c =
                    deriveCase(app, i, report.totalPmOps,
                               options.config);
                return runCase(c, options.config);
            });

        std::uint64_t digest = 0x77157e5ull;
        for (std::uint64_t i = 0; i < outcomes.size(); i++) {
            const CaseOutcome &out = outcomes[i];
            report.casesRun++;
            report.casesFired += out.fired ? 1 : 0;
            report.casesDegraded += out.degraded ? 1 : 0;
            digest = fold(digest, out.digest);
            if (options.keepReports)
                report.caseReports.push_back(out.report);
            if (out.ok)
                continue;
            report.violations++;
            if (options.shrinkViolations &&
                report.reproducers.size() <
                    options.maxReproducers) {
                const FuzzCase c = deriveCase(
                    app, i, report.totalPmOps, options.config);
                report.reproducers.push_back(
                    shrink(c, out, options.config));
            }
        }
        report.digest = digest;
        reports.push_back(std::move(report));
    }
    return reports;
}

} // namespace whisper::fuzz

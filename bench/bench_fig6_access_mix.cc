/**
 * @file
 * Regenerates paper Figure 6: PM accesses as a fraction of all memory
 * accesses for the simulator-suitable subset of WHISPER.
 *
 * Shape to reproduce: PM is a small minority everywhere (paper: 0.36%
 * for vacation up to 8.71% for ycsb, average ~3.5%) — the basis for
 * Consequence 11 (hardware must not tax volatile accesses).
 */

#include <map>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{
const std::map<std::string, double> kPaperPm = {
    {"echo", 5.49}, {"ycsb", 8.71},    {"redis", 0.74},
    {"ctree", 3.32}, {"hashmap", 2.6}, {"vacation", 0.36},
};
} // namespace

int
main()
{
    const core::AppConfig config = analysisConfig();
    TextTable table("Figure 6 — PM share of all memory accesses");
    table.header({"Benchmark", "PM accesses", "DRAM accesses", "PM %",
                  "paper PM %"});

    double pm_sum = 0.0;
    for (const auto &name : simSubset()) {
        core::RunResult result = runForAnalysis(name, config);
        const auto mix =
            analysis::computeAccessMix(result.runtime->traces());
        pm_sum += mix.pmFraction();
        table.row({name,
                   TextTable::num(mix.pmAccesses),
                   TextTable::num(mix.dramAccesses),
                   TextTable::percent(mix.pmFraction(), 2),
                   TextTable::fixed(kPaperPm.at(name), 2) + "%"});
    }
    table.print();
    std::printf("\nAverage PM share: %.2f%% (paper: 3.54%%). Shape "
                "check: DRAM dominates every application.\n",
                100.0 * pm_sum / simSubset().size());
    return 0;
}

/**
 * @file
 * MOD update-throughput scaling with threads on disjoint keys.
 *
 * The headline for the striped-commit redesign: N writer threads on
 * disjoint key partitions never share a stripe, so update throughput
 * scales with the thread count, where the old per-structure mutex
 * pinned it flat.
 *
 * Methodology (this repo measures in simulated cycles, not host
 * wall-clock — the CI box may have a single core): each thread count
 * runs the real concurrent workload (racing writers, CAS commits,
 * per-thread arenas and garbage lanes), then the trace replays
 * through the 4-core timing simulator. The striped design lets
 * threads' update work overlap, so its makespan is the busiest
 * core's cycles; the old design held one mutex across every update's
 * shadow-build/fence/commit, so no two updates' PM work ever
 * overlapped and its makespan is the sum over cores. Both rows come
 * from the same measured per-core costs — only the concurrency model
 * differs, which is exactly the delta under test.
 *
 * Scale update counts with WHISPER_OPS (default 2048 per thread).
 * Exit status enforces the acceptance floor: >= 2.5x at 4 threads on
 * the striped rows, mutex rows flat (<= 1.2x).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/runtime.hh"
#include "mod/mod_hashmap.hh"
#include "mod/mod_heap.hh"
#include "mod/mod_vector.hh"
#include "sim/simulator.hh"

using namespace whisper;

namespace
{

constexpr std::size_t kPool = 128 << 20;
constexpr Addr kHeapBase = 64 << 10;
constexpr std::uint64_t kDurabilityInterval = 16;

struct ScalePoint
{
    unsigned threads;
    std::uint64_t ops;
    std::uint64_t makespanStriped; //!< busiest core, cycles
    std::uint64_t makespanMutex;   //!< sum over cores, cycles
};

std::uint64_t
opsPerThread()
{
    if (const char *env = std::getenv("WHISPER_OPS")) {
        const double scale = std::max(0.01, std::atof(env));
        return static_cast<std::uint64_t>(2048 * scale);
    }
    return 2048;
}

/**
 * Every thread performs the same update stream on its own key
 * partition / spine region, so per-thread work is identical at every
 * thread count and the only variable is how much of it may overlap.
 */
ScalePoint
measure(const std::string &structure, unsigned threads,
        std::uint64_t per_thread)
{
    core::Runtime rt(kPool, threads);
    mod::ModHeap heap(rt.ctx(0), kHeapBase, kPool - kHeapBase,
                      threads);

    if (structure == "mod-hashmap") {
        mod::ModHashmap map(rt.ctx(0), heap, 0, 256 * threads,
                            threads);
        rt.clearTraces();
        rt.runThreads(threads, [&](pm::PmContext &ctx, ThreadId tid) {
            for (std::uint64_t i = 0; i < per_thread; i++) {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(tid) << 48) |
                    (i * 2654435761u % 1024);
                const std::uint64_t vals[3] = {tid, i, key};
                bool inserted = false;
                if (!map.put(ctx, tid, key, vals, inserted))
                    panic("mod heap exhausted");
                if (i % kDurabilityInterval == kDurabilityInterval - 1)
                    heap.durabilityPoint(ctx, tid);
            }
            heap.threadExit(ctx, tid);
        });
    } else {
        mod::ModVector vec(rt.ctx(0), heap, 0,
                           threads * mod::ModVector::kSlotsPerStripe);
        rt.clearTraces();
        rt.runThreads(threads, [&](pm::PmContext &ctx, ThreadId tid) {
            const std::uint64_t base =
                tid * mod::ModVector::kSlotsPerStripe;
            for (std::uint64_t i = 0; i < per_thread; i++) {
                const std::uint64_t slot =
                    base + i * 2654435761u %
                               mod::ModVector::kSlotsPerStripe;
                const std::uint64_t vals[8] = {tid, i, slot};
                if (!vec.write(ctx, tid, slot, 0, vals, 8, 8))
                    panic("mod heap exhausted");
                if (i % kDurabilityInterval == kDurabilityInterval - 1)
                    heap.durabilityPoint(ctx, tid);
            }
            heap.threadExit(ctx, tid);
        });
    }

    // Shared across every (structure, threads) measurement so all
    // scale points run against the identical device configuration.
    static const sim::SimParams params;
    sim::Simulator simulator(params, sim::ModelKind::X86Nvm);
    const sim::SimResult result = simulator.run(rt.traces());
    ScalePoint point;
    point.threads = threads;
    point.ops = per_thread * threads;
    point.makespanStriped = 0;
    point.makespanMutex = 0;
    for (const std::uint64_t c : result.coreCycles) {
        point.makespanStriped = std::max(point.makespanStriped, c);
        point.makespanMutex += c;
    }
    return point;
}

double
opsPerKcycle(std::uint64_t ops, std::uint64_t cycles)
{
    return cycles ? 1000.0 * static_cast<double>(ops) /
                        static_cast<double>(cycles)
                  : 0.0;
}

} // namespace

int
main()
{
    const std::uint64_t ops = opsPerThread();
    const std::vector<unsigned> thread_counts = {1, 2, 4};

    TextTable table("MOD update throughput scaling (disjoint keys)");
    table.header({"structure", "threads", "updates",
                  "striped ops/kcyc", "striped speedup",
                  "mutex ops/kcyc", "mutex speedup"});

    int failures = 0;
    for (const char *structure : {"mod-hashmap", "mod-vector"}) {
        double base_striped = 0.0, base_mutex = 0.0;
        for (const unsigned threads : thread_counts) {
            const ScalePoint p = measure(structure, threads, ops);
            const double striped =
                opsPerKcycle(p.ops, p.makespanStriped);
            const double mutex = opsPerKcycle(p.ops, p.makespanMutex);
            if (threads == 1) {
                base_striped = striped;
                base_mutex = mutex;
            }
            const double sp_striped =
                base_striped > 0 ? striped / base_striped : 0.0;
            const double sp_mutex =
                base_mutex > 0 ? mutex / base_mutex : 0.0;
            char s_buf[32], ss_buf[32], m_buf[32], ms_buf[32];
            std::snprintf(s_buf, sizeof(s_buf), "%.2f", striped);
            std::snprintf(ss_buf, sizeof(ss_buf), "%.2fx",
                          sp_striped);
            std::snprintf(m_buf, sizeof(m_buf), "%.2f", mutex);
            std::snprintf(ms_buf, sizeof(ms_buf), "%.2fx", sp_mutex);
            table.row({structure, std::to_string(threads),
                       TextTable::num(p.ops), s_buf, ss_buf, m_buf,
                       ms_buf});
            if (threads == 4) {
                if (sp_striped < 2.5) {
                    std::fprintf(stderr,
                                 "%s: striped speedup %.2fx at 4 "
                                 "threads is below the 2.5x floor\n",
                                 structure, sp_striped);
                    failures++;
                }
                if (sp_mutex > 1.2) {
                    std::fprintf(stderr,
                                 "%s: mutex baseline %.2fx at 4 "
                                 "threads should stay flat\n",
                                 structure, sp_mutex);
                    failures++;
                }
            }
        }
    }
    table.print();
    std::printf("floor: striped >= 2.50x and mutex <= 1.20x at 4 "
                "threads -- %s\n", failures ? "FAIL" : "PASS");
    return failures ? 1 : 0;
}

/**
 * @file
 * Throughput of the §5 analysis pipeline: events/second, sequential
 * vs sharded across cores.
 *
 * Records a handful of representative workloads in memory, then runs
 * the full analysis (epochs, dependencies, access mix) at --jobs 1
 * and at higher job counts, reporting events/sec and the speedup.
 * Also asserts that every parallel result is bit-identical to the
 * sequential one — the pipeline's core guarantee.
 *
 * Scale run sizes with WHISPER_OPS; pick job counts with
 * WHISPER_JOBS (comma list, default "2,4").
 */

#include <algorithm>
#include <chrono>
#include <cstring>

#include "analysis/pipeline.hh"
#include "bench/bench_util.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"

using namespace whisper;

namespace
{

double
timedAnalysis(const trace::TraceSet &traces, unsigned jobs,
              analysis::AnalysisResult &out)
{
    analysis::AnalysisOptions options;
    options.jobs = jobs;
    const auto start = std::chrono::steady_clock::now();
    out = analysis::analyzeTraces(traces, options);
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

bool
identical(const analysis::AnalysisResult &a,
          const analysis::AnalysisResult &b)
{
    return a.epochs.totalEpochs == b.epochs.totalEpochs &&
           a.epochs.totalTransactions == b.epochs.totalTransactions &&
           a.epochs.epochsPerSecond == b.epochs.epochsPerSecond &&
           a.epochs.singletonFraction == b.epochs.singletonFraction &&
           a.epochs.epochSizes.values() ==
               b.epochs.epochSizes.values() &&
           a.epochs.epochsPerTx.values() ==
               b.epochs.epochsPerTx.values() &&
           a.dependencies.selfDependent ==
               b.dependencies.selfDependent &&
           a.dependencies.crossDependent ==
               b.dependencies.crossDependent &&
           a.mix.pmAccesses == b.mix.pmAccesses &&
           a.mix.dramAccesses == b.mix.dramAccesses &&
           a.nti.ntBytes == b.nti.ntBytes &&
           a.amplification.userBytes == b.amplification.userBytes &&
           a.amplification.metaBytes() == b.amplification.metaBytes();
}

std::vector<unsigned>
jobList()
{
    std::vector<unsigned> jobs;
    const char *env = std::getenv("WHISPER_JOBS");
    std::string spec = env ? env : "2,4";
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok =
            spec.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (!tok.empty())
            jobs.push_back(
                static_cast<unsigned>(std::atoi(tok.c_str())));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (jobs.empty())
        jobs.push_back(2);
    return jobs;
}

} // namespace

int
main()
{
    // Epoch- and dependency-heavy representatives of each layer.
    const std::vector<std::string> apps = {"hashmap", "ycsb",
                                           "tpcc", "redis"};
    const std::vector<unsigned> jobs = jobList();

    core::AppConfig config = bench::analysisConfig();
    config.opsPerThread *= 4; // analysis, not recording, is timed

    TextTable table("analysis throughput (events/sec), sequential "
                    "vs sharded");
    std::vector<std::string> header = {"app", "events", "seq Mev/s"};
    for (const unsigned j : jobs)
        header.push_back("jobs=" + std::to_string(j) + " Mev/s");
    header.push_back("best speedup");
    header.push_back("identical");
    table.header(header);

    for (const auto &app : apps) {
        core::RunResult run = bench::runForAnalysis(app, config);
        const trace::TraceSet &traces = run.runtime->traces();
        const double events =
            static_cast<double>(traces.totalEvents());

        analysis::AnalysisResult seq;
        const double seqSecs = timedAnalysis(traces, 1, seq);

        std::vector<std::string> row = {
            app, TextTable::num(traces.totalEvents()),
            TextTable::fixed(events / seqSecs / 1e6, 2)};
        double best = 1.0;
        bool allIdentical = true;
        for (const unsigned j : jobs) {
            analysis::AnalysisResult par;
            const double parSecs = timedAnalysis(traces, j, par);
            row.push_back(
                TextTable::fixed(events / parSecs / 1e6, 2));
            best = std::max(best, seqSecs / parSecs);
            allIdentical = allIdentical && identical(seq, par);
        }
        row.push_back(TextTable::fixed(best, 2) + "x");
        row.push_back(allIdentical ? "yes" : "NO");
        table.row(row);
        if (!allIdentical) {
            std::fprintf(stderr,
                         "FATAL: %s parallel result diverged\n",
                         app.c_str());
            return 1;
        }
    }
    table.print();
    std::printf("\nworkers available: %u\n",
                ThreadPool::defaultWorkers());
    return 0;
}

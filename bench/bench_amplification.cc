/**
 * @file
 * Regenerates the paper's §5.2 write-amplification analysis: extra PM
 * bytes (logs, allocator state, transaction metadata, FS metadata)
 * per byte of user data.
 *
 * Shape to reproduce: PMFS ~10% (0.1x); Mnemosyne 3-6x; NVML ~10x;
 * N-store 2-14x depending on workload.
 */

#include <map>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{
const std::map<std::string, const char *> kPaperAmp = {
    {"echo", "2x-14x (N-store alloc)"}, {"ycsb", "2x-14x"},
    {"tpcc", "2x-14x"},   {"redis", "~10x"},   {"ctree", "~10x"},
    {"hashmap", "~10x"},  {"vacation", "3x-6x"},
    {"memcached", "3x-6x"}, {"nfs", "~0.1x"},  {"exim", "~0.1x"},
    {"mysql", "~0.1x"},
    // Post-paper MOD layer: no log, so the paper has no row; the MOD
    // claim is simply "below both logging libraries".
    {"mod-hashmap", "n/a (< Mnemosyne)"},
    {"mod-vector", "n/a (< Mnemosyne)"},
};
} // namespace

int
main()
{
    const core::AppConfig config = analysisConfig();
    TextTable table("§5.2 — write amplification (metadata bytes per "
                    "user byte)");
    table.header({"Benchmark", "user B", "log B", "alloc B", "txmeta B",
                  "fsmeta B", "ratio", "paper"});

    std::vector<std::string> names = suiteOrder();
    names.insert(names.end(), modOrder().begin(), modOrder().end());
    for (const auto &name : names) {
        core::RunResult result = runForAnalysis(name, config);
        const auto amp =
            analysis::computeAmplification(result.runtime->traces());
        table.row({name,
                   TextTable::num(amp.userBytes),
                   TextTable::num(amp.logBytes),
                   TextTable::num(amp.allocBytes),
                   TextTable::num(amp.txMetaBytes),
                   TextTable::num(amp.fsMetaBytes),
                   TextTable::fixed(amp.ratio(), 2) + "x",
                   kPaperAmp.at(name)});
    }
    table.print();
    std::puts("\nShape check: NVML >> Mnemosyne; the filesystem's "
              "unjournaled 4 KB user blocks keep PMFS near 0.1x; the "
              "log-free MOD structures land below both libraries.");
    return 0;
}

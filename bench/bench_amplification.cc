/**
 * @file
 * Regenerates the paper's §5.2 write-amplification analysis: extra PM
 * bytes (logs, allocator state, transaction metadata, FS metadata)
 * per byte of user data.
 *
 * Shape to reproduce: PMFS ~10% (0.1x); Mnemosyne 3-6x; NVML ~10x;
 * N-store 2-14x depending on workload.
 */

#include <algorithm>
#include <map>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{
const std::map<std::string, const char *> kPaperAmp = {
    {"echo", "2x-14x (N-store alloc)"}, {"ycsb", "2x-14x"},
    {"tpcc", "2x-14x"},   {"redis", "~10x"},   {"ctree", "~10x"},
    {"hashmap", "~10x"},  {"vacation", "3x-6x"},
    {"memcached", "3x-6x"}, {"nfs", "~0.1x"},  {"exim", "~0.1x"},
    {"mysql", "~0.1x"},
    // Post-paper MOD layer: no log, so the paper has no row; the MOD
    // claim is simply "below both logging libraries".
    {"mod-hashmap", "n/a (< Mnemosyne)"},
    {"mod-vector", "n/a (< Mnemosyne)"},
    // Post-paper Hybrid layer: DRAM index, PM data only — the claim
    // is strictly below even MOD (the suite's previous floor).
    {"halo-hashmap", "n/a (< MOD)"},
};
} // namespace

int
main()
{
    const core::AppConfig config = analysisConfig();
    TextTable table("§5.2 — write amplification (metadata bytes per "
                    "user byte)");
    table.header({"Benchmark", "user B", "log B", "alloc B", "txmeta B",
                  "fsmeta B", "ratio", "paper"});

    std::vector<std::string> names = suiteOrder();
    names.insert(names.end(), modOrder().begin(), modOrder().end());
    names.insert(names.end(), haloOrder().begin(), haloOrder().end());
    double mod_floor = 1e9;
    double halo_amp = -1.0;
    for (const auto &name : names) {
        core::RunResult result = runForAnalysis(name, config);
        const auto amp =
            analysis::computeAmplification(result.runtime->traces());
        const bool is_mod =
            std::find(modOrder().begin(), modOrder().end(), name) !=
            modOrder().end();
        if (is_mod)
            mod_floor = std::min(mod_floor, amp.ratio());
        if (name == "halo-hashmap")
            halo_amp = amp.ratio();
        table.row({name,
                   TextTable::num(amp.userBytes),
                   TextTable::num(amp.logBytes),
                   TextTable::num(amp.allocBytes),
                   TextTable::num(amp.txMetaBytes),
                   TextTable::num(amp.fsMetaBytes),
                   TextTable::fixed(amp.ratio(), 2) + "x",
                   kPaperAmp.at(name)});
    }
    table.print();
    std::puts("\nShape check: NVML >> Mnemosyne; the filesystem's "
              "unjournaled 4 KB user blocks keep PMFS near 0.1x; the "
              "log-free MOD structures land below both libraries; the "
              "hybrid halo store lands below MOD.");
    // Enforced ceiling: the Hybrid layer's whole reason to exist is
    // the lowest amplification in the suite — strictly below every
    // measured MOD ratio and below the MOD band floor (1.2x).
    if (halo_amp < 0.0 || halo_amp >= mod_floor || halo_amp >= 1.2) {
        std::fprintf(stderr,
                     "FAIL: halo amplification %.3fx must be strictly "
                     "below MOD's measured %.3fx and the 1.2x band "
                     "floor\n",
                     halo_amp, mod_floor);
        return 1;
    }
    std::printf("halo ceiling enforced: %.2fx < MOD %.2fx -- PASS\n",
                halo_amp, mod_floor);
    return 0;
}

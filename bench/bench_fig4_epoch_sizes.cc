/**
 * @file
 * Regenerates paper Figure 4: the distribution of epoch sizes (unique
 * 64 B lines written per epoch), folded into the paper's buckets
 * {1, 2, 3, 4, 5, 6-63, >=64}.
 *
 * Shape to reproduce: ~75% of native/library epochs are singletons;
 * PMFS applications have large modes at 1-2 lines *and* at >=64 lines
 * (whole 4 KB blocks). Also reports the fraction of singleton epochs
 * that store fewer than 10 bytes (paper: ~60%).
 */

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    const core::AppConfig config = analysisConfig();
    const auto buckets = BucketedDistribution::epochSizeBuckets();

    TextTable table("Figure 4 — epoch size distribution (unique lines)");
    std::vector<std::string> header = {"Benchmark"};
    for (const auto &b : buckets.buckets())
        header.push_back(b.label);
    header.push_back("<10B singl.");
    table.header(header);

    for (const auto &name : suiteOrder()) {
        core::RunResult result = runForAnalysis(name, config);
        analysis::EpochBuilder builder(result.runtime->traces());
        const analysis::EpochSummary sum = analysis::summarizeEpochs(
            builder, result.runtime->traces());
        const auto fractions = buckets.fractions(sum.epochSizes);
        std::vector<std::string> row = {name};
        for (const double f : fractions)
            row.push_back(TextTable::percent(f, 1));
        row.push_back(TextTable::percent(sum.singletonUnder10B, 0));
        table.row(row);
    }
    table.print();
    std::puts("\nShape check: library/native rows are singleton-heavy;"
              " FS rows show a >=64 mode from 4 KB block writes.");
    return 0;
}

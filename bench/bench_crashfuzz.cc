/**
 * @file
 * Crash-fuzz throughput: cases/second per access layer, sequential
 * vs fanned out across the deterministic thread pool.
 *
 * One representative application per access layer runs a short sweep
 * at --jobs 1 and at higher job counts; the table reports cases/sec
 * and the speedup, and the run asserts the parallel digests are
 * bit-identical to the sequential ones — the fuzzer's replayability
 * guarantee.
 *
 * Scale case counts with WHISPER_OPS (cases per app, default 64);
 * pick job counts with WHISPER_JOBS (comma list, default "2,4").
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hh"
#include "fuzz/crash_fuzz.hh"

using namespace whisper;

namespace
{

double
timedSweep(fuzz::SweepOptions options, unsigned jobs,
           std::vector<fuzz::AppSweepReport> &out)
{
    options.jobs = jobs;
    const auto start = std::chrono::steady_clock::now();
    out = fuzz::sweep(options);
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace

int
main()
{
    fuzz::SweepOptions options;
    options.apps = {"echo", "hashmap", "vacation", "nfs"};
    options.cases = 64;
    options.config.opsPerThread = 10;
    options.config.poolBytes = 24 << 20;
    options.shrinkViolations = false;
    if (const char *ops = std::getenv("WHISPER_OPS"))
        options.cases = std::strtoull(ops, nullptr, 10);

    std::vector<unsigned> job_counts = {2, 4};
    if (const char *jobs = std::getenv("WHISPER_JOBS")) {
        job_counts.clear();
        for (const char *p = jobs; *p;) {
            char *end = nullptr;
            job_counts.push_back(
                static_cast<unsigned>(std::strtoul(p, &end, 10)));
            p = *end == ',' ? end + 1 : end;
        }
    }

    std::vector<fuzz::AppSweepReport> sequential;
    const double base =
        timedSweep(options, 1, sequential);
    const double total_cases = static_cast<double>(
        options.cases * options.apps.size());

    TextTable table("crash-fuzz sweep throughput");
    table.header({"jobs", "seconds", "cases/sec", "speedup",
                  "digests"});
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", base);
    table.row({"1", buf,
               TextTable::num(static_cast<std::uint64_t>(
                   total_cases / base)),
               "1.00x", "baseline"});

    int failures = 0;
    for (const unsigned jobs : job_counts) {
        std::vector<fuzz::AppSweepReport> parallel;
        const double secs = timedSweep(options, jobs, parallel);
        bool same = parallel.size() == sequential.size();
        for (std::size_t i = 0; same && i < parallel.size(); i++)
            same = parallel[i].digest == sequential[i].digest;
        if (!same)
            failures++;
        char secs_buf[32], speed_buf[32];
        std::snprintf(secs_buf, sizeof(secs_buf), "%.3f", secs);
        std::snprintf(speed_buf, sizeof(speed_buf), "%.2fx",
                      base / secs);
        table.row({std::to_string(jobs), secs_buf,
                   TextTable::num(static_cast<std::uint64_t>(
                       total_cases / secs)),
                   speed_buf, same ? "identical" : "MISMATCH"});
    }
    table.print();

    for (const auto &r : sequential) {
        if (r.violations) {
            std::fprintf(stderr, "unexpected violations in %s\n",
                         r.app.c_str());
            failures++;
        }
    }
    return failures ? 1 : 0;
}

/**
 * @file
 * Google-benchmark microbenchmarks of the library's primitives.
 *
 * Supports the paper's Consequence 2 ("epoch implementations should
 * be fast, as epochs are much more common than transactions"): the
 * HOPS ofence must be far cheaper than a durability point, and the
 * persistence libraries' per-operation costs should order as their
 * epoch counts predict (slab < buddy < redo-logged allocator; one
 * Mnemosyne update < one NVML snapshot+update).
 */

#include <benchmark/benchmark.h>

#include "alloc/buddy_alloc.hh"
#include "alloc/nvml_alloc.hh"
#include "core/hops.hh"
#include "core/runtime.hh"
#include "txlib/mnemosyne.hh"
#include "txlib/nvml.hh"

using namespace whisper;

namespace
{

struct World
{
    core::Runtime rt{64 << 20, 1};
    pm::PmContext &ctx{rt.ctx(0)};
};

void
BM_PmStore(benchmark::State &state)
{
    World w;
    const std::uint64_t v = 1;
    Addr off = 0;
    for (auto _ : state) {
        w.ctx.store(off, &v, 8);
        off = (off + 64) & ((16 << 20) - 1);
    }
}
BENCHMARK(BM_PmStore);

void
BM_StoreFlushFence(benchmark::State &state)
{
    // The current-hardware persist: clwb + sfence per epoch.
    World w;
    const std::uint64_t v = 1;
    Addr off = 0;
    for (auto _ : state) {
        w.ctx.store(off, &v, 8);
        w.ctx.flush(off, 8);
        w.ctx.fence(pm::FenceKind::Ordering);
        off = (off + 64) & ((16 << 20) - 1);
    }
}
BENCHMARK(BM_StoreFlushFence);

void
BM_HopsStoreOfence(benchmark::State &state)
{
    // The HOPS epoch: store + ofence, no flush.
    World w;
    core::HopsContext hops(w.ctx);
    const std::uint64_t v = 1;
    Addr off = 0;
    for (auto _ : state) {
        hops.store(off, &v, 8);
        hops.ofence();
        off = (off + 64) & ((16 << 20) - 1);
        if (off == 0)
            hops.dfence(); // bound the tracked set
    }
}
BENCHMARK(BM_HopsStoreOfence);

void
BM_HopsStoreDfence(benchmark::State &state)
{
    World w;
    core::HopsContext hops(w.ctx);
    const std::uint64_t v = 1;
    Addr off = 0;
    for (auto _ : state) {
        hops.store(off, &v, 8);
        hops.dfence();
        off = (off + 64) & ((16 << 20) - 1);
    }
}
BENCHMARK(BM_HopsStoreDfence);

void
BM_SlabAlloc(benchmark::State &state)
{
    World w;
    alloc::SlabAllocator slab(w.ctx, 0, 48 << 20);
    std::vector<Addr> live;
    for (auto _ : state) {
        const Addr a = slab.alloc(w.ctx, 64);
        live.push_back(a);
        if (live.size() >= 1024) {
            for (const Addr p : live)
                slab.free(w.ctx, p);
            live.clear();
        }
    }
}
BENCHMARK(BM_SlabAlloc);

void
BM_BuddyAlloc(benchmark::State &state)
{
    World w;
    alloc::BuddyAllocator heap(w.ctx, 0, 32 << 20);
    std::vector<Addr> live;
    for (auto _ : state) {
        const Addr a = heap.alloc(w.ctx, 48);
        live.push_back(a);
        if (live.size() >= 1024) {
            for (const Addr p : live)
                heap.free(w.ctx, p);
            live.clear();
        }
    }
}
BENCHMARK(BM_BuddyAlloc);

void
BM_NvmlAlloc(benchmark::State &state)
{
    World w;
    alloc::NvmlAllocator heap(w.ctx,
                              alloc::NvmlAllocator::logBytes(),
                              32 << 20, 0);
    std::vector<Addr> live;
    for (auto _ : state) {
        const Addr a = heap.alloc(w.ctx, 64);
        live.push_back(a);
        if (live.size() >= 1024) {
            for (const Addr p : live)
                heap.free(w.ctx, p);
            live.clear();
        }
    }
}
BENCHMARK(BM_NvmlAlloc);

void
BM_MnemosyneTx(benchmark::State &state)
{
    World w;
    mne::MnemosyneHeap heap(w.ctx, 0, 48 << 20, 1);
    const Addr obj = heap.pmalloc(w.ctx, 64);
    std::uint64_t v = 0;
    for (auto _ : state) {
        mne::Transaction tx(heap, w.ctx);
        tx.update(obj, &v, 8);
        tx.commit();
        v++;
    }
}
BENCHMARK(BM_MnemosyneTx);

void
BM_NvmlTx(benchmark::State &state)
{
    World w;
    nvml::NvmlPool pool(w.ctx, 0, 48 << 20, 1);
    Addr obj;
    {
        nvml::TxContext tx(pool, w.ctx);
        obj = tx.txAlloc(64);
        tx.commit();
    }
    for (auto _ : state) {
        nvml::TxContext tx(pool, w.ctx);
        auto *cell = w.ctx.pool().at<std::uint64_t>(obj);
        tx.set(*cell, *cell + 1);
        tx.commit();
    }
}
BENCHMARK(BM_NvmlTx);

} // namespace

BENCHMARK_MAIN();

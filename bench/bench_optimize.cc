/**
 * @file
 * Before/after report for the trace-driven fence/flush optimizer
 * (DESIGN.md §11): runs each logging-library workload twice — once
 * with the baseline persistence schedule and once with the full
 * txlib elision policy (txlib/elision.hh) — and tabulates epoch,
 * flush and fence counts from the recorded traces.
 *
 * Shape to reproduce: elision must remove work (strictly fewer
 * flushes + fences on every app, enforced below) without touching
 * correctness — both runs go through the same verification the
 * harness always applies, and the crashfuzz sweeps re-prove the
 * recovery invariants under elision separately.
 */

#include "bench/bench_util.hh"
#include "analysis/optimize.hh"
#include "analysis/pipeline.hh"
#include "common/table.hh"
#include "txlib/elision.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{

struct Counts
{
    std::uint64_t epochs = 0;
    std::uint64_t flushes = 0;
    std::uint64_t fences = 0;
};

Counts
measure(const std::string &name, const core::AppConfig &config)
{
    core::RunResult result = runForAnalysis(name, config);
    const auto analysis =
        analysis::analyzeTraces(result.runtime->traces());
    const auto optimize =
        analysis::optimizeTraces(result.runtime->traces());
    return {analysis.epochs.totalEpochs,
            optimize.summary.totalFlushes,
            optimize.summary.totalFences};
}

} // namespace

int
main()
{
    const core::AppConfig config = analysisConfig();
    // The elision policy only has bits for the logging libraries, so
    // the interesting rows are the Mnemosyne and NVML apps.
    const std::vector<std::string> apps = {
        "vacation", "memcached", "redis", "ctree", "hashmap"};

    TextTable table("fence/flush elision — before/after per app");
    table.header({"Benchmark", "epochs", "(elided)", "flushes",
                  "(elided)", "fences", "(elided)", "ops removed"});

    bool all_fewer = true;
    for (const auto &name : apps) {
        Counts before, after;
        {
            txlib::ScopedElisionPolicy off(txlib::kElideNone);
            before = measure(name, config);
        }
        {
            txlib::ScopedElisionPolicy on(txlib::kElideAll);
            after = measure(name, config);
        }
        const std::uint64_t ops_before = before.flushes + before.fences;
        const std::uint64_t ops_after = after.flushes + after.fences;
        if (ops_after >= ops_before)
            all_fewer = false;
        const double removed =
            ops_before
                ? 1.0 - static_cast<double>(ops_after) /
                            static_cast<double>(ops_before)
                : 0.0;
        table.row({name, TextTable::num(before.epochs),
                   TextTable::num(after.epochs),
                   TextTable::num(before.flushes),
                   TextTable::num(after.flushes),
                   TextTable::num(before.fences),
                   TextTable::num(after.fences),
                   TextTable::percent(removed, 1)});
    }
    table.print();

    if (!all_fewer) {
        std::fputs("FATAL: elision failed to remove flush/fence work "
                   "on some app\n", stderr);
        return 1;
    }
    std::puts("\nShape check: every app issues strictly fewer "
              "flushes + fences under elision; verification and the "
              "elided crashfuzz sweeps hold either way.");
    return 0;
}

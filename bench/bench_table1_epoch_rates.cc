/**
 * @file
 * Regenerates paper Table 1: WHISPER applications, their access
 * layers, workload configuration and epochs per second.
 *
 * Absolute rates depend on the host and on our logical-clock costs;
 * the shape to reproduce is the layer ordering: native applications
 * have the highest epoch rates, library applications are in the
 * millions-to-hundreds-of-thousands range, and filesystem
 * applications are one to three orders of magnitude lower.
 */

#include <map>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{

const std::map<std::string, const char *> kPaperRates = {
    {"echo", "1.6 M"},  {"ycsb", "5 M"},       {"tpcc", "7.3 M"},
    {"redis", "1.3 M"}, {"ctree", "1 M"},      {"hashmap", "1.3 M"},
    {"vacation", "700 K"}, {"memcached", "1.5 M"}, {"nfs", "250 K"},
    {"exim", "6.25 K"}, {"mysql", "60 K"},
};

std::string
humanRate(double eps)
{
    char buf[64];
    if (eps >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.1f M", eps / 1e6);
    else if (eps >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1f K", eps / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", eps);
    return buf;
}

} // namespace

int
main()
{
    const core::AppConfig config = analysisConfig();
    TextTable table("Table 1 — WHISPER applications: epochs per second");
    table.header({"Benchmark", "Access Layer", "Epochs", "Epochs/sec",
                  "Paper"});

    for (const auto &name : suiteOrder()) {
        core::RunResult result = runForAnalysis(name, config);
        analysis::EpochBuilder builder(result.runtime->traces());
        const analysis::EpochSummary sum = analysis::summarizeEpochs(
            builder, result.runtime->traces());
        table.row({name,
                   core::accessLayerName(result.layer),
                   TextTable::num(sum.totalEpochs),
                   humanRate(sum.epochsPerSecond),
                   kPaperRates.at(name)});
    }
    table.print();
    std::puts("\nShape check: native > library >> filesystem rates, as"
              " in the paper.");
    return 0;
}

/**
 * @file
 * Regenerates the paper's §5.2 "How is PM written?" analysis: the
 * share of PM write traffic issued with non-temporal (cache-
 * bypassing) instructions.
 *
 * Shape to reproduce: ~96% for PMFS applications (user data and page
 * zeroing are NTIs), ~67% for Mnemosyne (redo-log writes are NTIs),
 * low for NVML/N-store (cacheable stores + flushes).
 */

#include <map>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{
const std::map<std::string, const char *> kPaper = {
    {"echo", "low"},      {"ycsb", "low"},    {"tpcc", "low"},
    {"redis", "low"},     {"ctree", "low"},   {"hashmap", "low"},
    {"vacation", "~67%"}, {"memcached", "~67%"},
    {"nfs", "~96%"},      {"exim", "~96%"},   {"mysql", "~96%"},
};
} // namespace

int
main()
{
    const core::AppConfig config = analysisConfig();
    TextTable table("§5.2 — non-temporal share of PM write traffic");
    table.header({"Benchmark", "NTI bytes", "cacheable bytes",
                  "NTI % (bytes)", "NTI % (events)", "paper"});

    for (const auto &name : suiteOrder()) {
        core::RunResult result = runForAnalysis(name, config);
        const auto nti =
            analysis::computeNtiUsage(result.runtime->traces());
        table.row({name,
                   TextTable::num(nti.ntBytes),
                   TextTable::num(nti.cacheableBytes),
                   TextTable::percent(nti.ntiFraction(), 1),
                   TextTable::percent(nti.ntiEventFraction(), 1),
                   kPaper.at(name)});
    }
    table.print();
    std::puts("\nShape check: PMFS apps highest (NTI user data + page"
              " zeroing), Mnemosyne apps next (NTI redo logs).");
    return 0;
}

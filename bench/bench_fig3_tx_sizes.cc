/**
 * @file
 * Regenerates paper Figure 3: the distribution of transaction sizes
 * (number of epochs / ordering points per durable transaction), with
 * the paper's reported medians alongside.
 *
 * Shape to reproduce: most transactions take 5-50 epochs; Echo and
 * N-store TPC-C take well over a hundred; filesystem transactions
 * (one per syscall) are the smallest.
 */

#include <map>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{
const std::map<std::string, int> kPaperMedians = {
    {"echo", 307}, {"ycsb", 42},   {"tpcc", 197}, {"redis", 6},
    {"ctree", 11}, {"hashmap", 11}, {"vacation", 4},
    {"memcached", 4}, {"nfs", 2},  {"exim", 5},   {"mysql", 7},
    // Post-paper MOD layer: one ordering point per update by design.
    {"mod-hashmap", 1}, {"mod-vector", 1},
};
} // namespace

int
main()
{
    const core::AppConfig config = analysisConfig();
    TextTable table(
        "Figure 3 — epochs (ordering points) per transaction");
    table.header({"Benchmark", "Transactions", "Median", "p10", "p90",
                  "Paper median"});

    std::vector<std::string> names = suiteOrder();
    names.insert(names.end(), modOrder().begin(), modOrder().end());
    for (const auto &name : names) {
        core::RunResult result = runForAnalysis(name, config);
        analysis::EpochBuilder builder(result.runtime->traces());
        const analysis::EpochSummary sum = analysis::summarizeEpochs(
            builder, result.runtime->traces());
        table.row({name,
                   TextTable::num(sum.totalTransactions),
                   TextTable::num(sum.epochsPerTx.median()),
                   TextTable::num(sum.epochsPerTx.quantile(0.10)),
                   TextTable::num(sum.epochsPerTx.quantile(0.90)),
                   TextTable::num(kPaperMedians.at(name))});
    }
    table.print();
    std::puts("\nShape check: echo/tpcc are the outliers with >100"
              " epochs/tx; libraries sit in the 4-50 band; the MOD "
              "structures pin the floor at one epoch per update.");
    return 0;
}

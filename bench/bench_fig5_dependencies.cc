/**
 * @file
 * Regenerates paper Figure 5: epochs with self- and cross-thread WAW
 * dependencies within a 50 us window, as a fraction of all epochs.
 *
 * Shape to reproduce: self-dependencies are abundant (tens of
 * percent, highest for the NVML applications), cross-dependencies are
 * rare (at most a few percent).
 */

#include <map>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace whisper;
using namespace whisper::bench;

namespace
{
const std::map<std::string, std::pair<double, double>> kPaper = {
    // {self%, cross%} from the paper's Figure 5.
    {"echo", {54.5, 0.01}},    {"ycsb", {40.2, 0.003}},
    {"tpcc", {27.18, 0.03}},   {"redis", {82.5, 0.0}},
    {"ctree", {79.0, 0.0}},    {"hashmap", {81.0, 0.0}},
    {"vacation", {40.0, 0.01}}, {"memcached", {63.5, 0.2}},
    {"nfs", {55.0, 5.0}},      {"exim", {45.27, 1.16}},
    {"mysql", {17.89, 0.04}},
};
} // namespace

int
main()
{
    const core::AppConfig config = analysisConfig();
    TextTable table("Figure 5 — epoch dependencies within 50 us");
    table.header({"Benchmark", "self-dep", "cross-dep", "paper self",
                  "paper cross"});

    double self_sum = 0.0, cross_sum = 0.0;
    for (const auto &name : suiteOrder()) {
        core::RunResult result = runForAnalysis(name, config);
        analysis::EpochBuilder builder(result.runtime->traces());
        const auto deps = analysis::analyzeDependencies(builder);
        self_sum += deps.selfFraction();
        cross_sum += deps.crossFraction();
        const auto &[pself, pcross] = kPaper.at(name);
        table.row({name,
                   TextTable::percent(deps.selfFraction(), 2),
                   TextTable::percent(deps.crossFraction(), 3),
                   TextTable::fixed(pself, 2) + "%",
                   TextTable::fixed(pcross, 3) + "%"});
    }
    table.print();
    std::printf("\nAverages: self %.1f%%, cross %.2f%%. Shape check: "
                "self-dependencies abundant, cross rare.\n",
                100.0 * self_sum / suiteOrder().size(),
                100.0 * cross_sum / suiteOrder().size());
    return 0;
}

/**
 * @file
 * Ablation: HOPS persist-buffer sizing.
 *
 * The paper evaluates 32-entry per-thread PBs with background
 * draining launched at 16 buffered entries (§6.4) but does not sweep
 * the parameter; this bench does, replaying one application trace
 * with PB sizes from 2 to 64 entries. Expect stalls (and runtime) to
 * grow sharply once the PB cannot hold a whole transaction's epochs,
 * and the paper's 32/16 choice to sit on the flat part of the curve.
 */

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "sim/simulator.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    core::AppConfig config = simConfig();
    core::RunResult result = runForAnalysis("ycsb", config);
    const trace::TraceSet &traces = result.runtime->traces();

    TextTable table("Ablation — HOPS persist-buffer size (ycsb trace)");
    table.header({"PB entries", "drain at", "cycles", "vs 32-entry",
                  "PB-full stall cyc", "epochs drained"});

    // Baseline first so the comparison column is meaningful. Every
    // variant below is derived from this one base object so the sweep
    // only varies the PB knobs, never the device configuration.
    sim::SimParams base;
    base.pbEntries = 32;
    base.pbDrainThreshold = 16;
    sim::Simulator base_sim(base, sim::ModelKind::HopsNvm);
    const auto base_result = base_sim.run(traces);

    for (const std::uint32_t entries : {2u, 4u, 8u, 16u, 32u, 64u}) {
        sim::SimParams params = base;
        params.pbEntries = entries;
        params.pbDrainThreshold = std::max(1u, entries / 2);
        sim::Simulator sim_run(params, sim::ModelKind::HopsNvm);
        const auto r = sim_run.run(traces);
        const double rel = static_cast<double>(r.cycles) /
                           static_cast<double>(base_result.cycles);
        table.row({TextTable::num(entries),
                   TextTable::num(params.pbDrainThreshold),
                   TextTable::num(r.cycles),
                   TextTable::fixed(rel, 3),
                   TextTable::num(r.persist.pbFullStalls),
                   TextTable::num(r.persist.epochsDrained)});
    }
    table.print();
    std::puts("\nObservation: beyond the knee, extra PB entries stop"
              " helping — the paper's 32/16 sits on the flat part.");
    return 0;
}

/**
 * @file
 * YCSB mixes across the six PM access layers.
 *
 * Sweeps one representative application per access layer — ycsb
 * (native), hashmap (NVML), memcached (Mnemosyne), nfs (PMFS),
 * mod-hashmap (MOD) and halo-hashmap (Hybrid) — through mixes A
 * (update-heavy), B (read-heavy) and F (read-modify-write), reporting
 * throughput and tail latency from the simulated logical clock. The paper's §5 story retold as
 * service levels: the logging layers pay their write amplification as
 * p99 latency, the MOD layer trades median for tail, and the
 * filesystem's journal batching shows up as the widest p50/p999
 * spread.
 *
 * All numbers are deterministic (fixed seed, partitioned clients,
 * mergeable histograms) — two runs of this binary print identical
 * tables. Scale op counts with WHISPER_OPS (default 2000 per
 * thread). Exit status enforces sanity — every cell must verify its
 * post-run invariants — plus one service-level floor: the Hybrid
 * layer, paying almost no PM metadata, must match or beat the NVML
 * hashmap's mix-A throughput at 4 threads.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hh"
#include "workload/workload.hh"

using namespace whisper;

namespace
{

std::uint64_t
opsPerThread()
{
    if (const char *env = std::getenv("WHISPER_OPS")) {
        const double scale = std::max(0.01, std::atof(env));
        return static_cast<std::uint64_t>(2000 * scale);
    }
    return 2000;
}

} // namespace

int
main()
{
    const std::vector<std::string> apps = {
        "ycsb",        "hashmap",     "memcached",
        "nfs",         "mod-hashmap", "halo-hashmap"};
    const std::vector<char> mixes = {'A', 'B', 'F'};

    TextTable table("YCSB mixes across access layers "
                    "(zipfian, 4 threads, ticks = ns)");
    table.header({"layer", "app", "mix", "ops", "kops/s", "p50",
                  "p99", "p999", "verified"});

    int failures = 0;
    double nvml_mix_a = 0.0;
    double halo_mix_a = 0.0;
    for (const std::string &app : apps) {
        for (const char mix : mixes) {
            workload::WorkloadOptions opts;
            opts.app = app;
            opts.mix = workload::MixSpec::ycsb(mix);
            opts.dist = workload::KeyDist::Zipfian;
            opts.keys = 20000;
            opts.threads = 4;
            opts.opsPerThread = opsPerThread();
            const workload::WorkloadResult r =
                workload::runWorkload(opts);
            if (!r.verified) {
                std::fprintf(stderr, "%s mix %c failed:\n%s\n",
                             app.c_str(), mix,
                             r.check.describe().c_str());
                failures++;
            }
            if (mix == 'A' && app == "hashmap")
                nvml_mix_a = r.throughputOpsPerSec();
            if (mix == 'A' && app == "halo-hashmap")
                halo_mix_a = r.throughputOpsPerSec();
            table.row({r.layerName, app, std::string(1, mix),
                       TextTable::num(r.ops.total()),
                       TextTable::fixed(
                           r.throughputOpsPerSec() / 1000.0, 1),
                       TextTable::num(r.latency.quantile(0.50)),
                       TextTable::num(r.latency.quantile(0.99)),
                       TextTable::num(r.latency.quantile(0.999)),
                       r.verified ? "yes" : "NO"});
        }
    }
    table.print();
    if (halo_mix_a < nvml_mix_a) {
        std::fprintf(stderr,
                     "FAIL: halo mix A %.0f ops/s must be >= the "
                     "NVML hashmap's %.0f ops/s\n",
                     halo_mix_a, nvml_mix_a);
        failures++;
    } else {
        std::printf("halo mix A floor enforced: %.0f >= NVML %.0f "
                    "ops/s\n",
                    halo_mix_a, nvml_mix_a);
    }
    std::printf("all cells verified -- %s\n",
                failures ? "FAIL" : "PASS");
    return failures ? 1 : 0;
}

/**
 * @file
 * Shared plumbing for the per-table/per-figure bench binaries.
 *
 * Every binary regenerates the rows of one table or figure from the
 * paper. Run sizes scale with the WHISPER_OPS environment variable
 * (a multiplier; default 1 keeps each binary in the seconds range).
 */

#ifndef WHISPER_BENCH_BENCH_UTIL_HH
#define WHISPER_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/access_mix.hh"
#include "analysis/dependency.hh"
#include "analysis/epoch_stats.hh"
#include "core/harness.hh"

namespace whisper::bench
{

/** The ten WHISPER workloads in the paper's Table 1 order. */
inline const std::vector<std::string> &
suiteOrder()
{
    static const std::vector<std::string> order = {
        "echo", "ycsb", "tpcc", "redis", "ctree", "hashmap",
        "vacation", "memcached", "nfs", "exim", "mysql"};
    return order;
}

/**
 * The post-paper MOD workloads (src/mod). Kept out of suiteOrder() so
 * the paper-figure benches keep their Table 1 rows and paper-value
 * lookups intact; benches that can show the MOD layer next to the
 * logging layers append this list explicitly.
 */
inline const std::vector<std::string> &
modOrder()
{
    static const std::vector<std::string> order = {"mod-hashmap",
                                                   "mod-vector"};
    return order;
}

/**
 * The post-paper Hybrid workloads (src/halo): DRAM index over PM data
 * segments. Separate from modOrder() for the same reason that list is
 * separate from suiteOrder().
 */
inline const std::vector<std::string> &
haloOrder()
{
    static const std::vector<std::string> order = {"halo-hashmap"};
    return order;
}

/** The subset that runs under the timing simulator (Figures 6/10). */
inline const std::vector<std::string> &
simSubset()
{
    static const std::vector<std::string> subset = {
        "echo", "ycsb", "redis", "ctree", "hashmap", "vacation"};
    return subset;
}

/** Ops multiplier from the environment. */
inline double
opsScale()
{
    if (const char *env = std::getenv("WHISPER_OPS"))
        return std::max(0.01, std::atof(env));
    return 1.0;
}

/** Baseline config for the analysis benches. */
inline core::AppConfig
analysisConfig()
{
    core::AppConfig config;
    config.threads = 4;
    config.opsPerThread = static_cast<std::uint64_t>(400 * opsScale());
    config.poolBytes = 256 << 20;
    config.seed = 42;
    return config;
}

/** Smaller config for simulator-driven benches (records DRAM). */
inline core::AppConfig
simConfig()
{
    core::AppConfig config;
    config.threads = 4;
    config.opsPerThread = static_cast<std::uint64_t>(150 * opsScale());
    config.poolBytes = 192 << 20;
    config.seed = 42;
    config.recordVolatile = true;
    return config;
}

/** Run one app under the analysis config, asserting verification. */
inline core::RunResult
runForAnalysis(const std::string &name, const core::AppConfig &config)
{
    core::RunResult result = core::runApp(name, config);
    if (!result.verified) {
        std::fprintf(stderr, "FATAL: %s failed verification\n",
                     name.c_str());
        std::exit(1);
    }
    return result;
}

} // namespace whisper::bench

#endif // WHISPER_BENCH_BENCH_UTIL_HH

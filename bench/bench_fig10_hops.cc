/**
 * @file
 * Regenerates paper Figure 10: application runtimes under five
 * persistency models, normalized to the x86-64 (NVM) baseline.
 *
 * Each simulator-suitable application is traced once (including its
 * DRAM traffic) and the same trace is replayed through the timing
 * simulator under: x86-64 with durability at the NVM device, x86-64
 * with a persistent write queue at the MC, HOPS (NVM), HOPS (PWQ),
 * and the non-crash-consistent ideal.
 *
 * Shape to reproduce (paper §6.4): PWQ cuts ~15.5% off the x86
 * baseline; HOPS (NVM) beats x86 (NVM) by ~24.3% and x86 (PWQ) by
 * ~10%; a PWQ adds only ~1.4% to HOPS; ideal beats the baseline by
 * ~40.7%.
 */

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "sim/simulator.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    const core::AppConfig config = simConfig();
    const std::vector<sim::ModelKind> kinds = {
        sim::ModelKind::X86Nvm, sim::ModelKind::X86Pwq,
        sim::ModelKind::HopsNvm, sim::ModelKind::HopsPwq,
        sim::ModelKind::Ideal};

    TextTable table("Figure 10 — normalized runtime (x86-64 NVM = 1.0)");
    table.header({"Benchmark", "x86-64 (NVM)", "x86-64 (PWQ)",
                  "HOPS (NVM)", "HOPS (PWQ)", "IDEAL (NON-CC)"});

    // Every model comparison below runs against this one params
    // object so all rows share a single device configuration.
    const sim::SimParams params;

    std::vector<double> sums(kinds.size(), 0.0);
    for (const auto &name : simSubset()) {
        core::RunResult result = runForAnalysis(name, config);
        const auto results =
            sim::runModels(result.runtime->traces(), params, kinds);
        const double base = static_cast<double>(results[0].cycles);
        std::vector<std::string> row = {name};
        for (std::size_t m = 0; m < results.size(); m++) {
            const double norm =
                static_cast<double>(results[m].cycles) / base;
            sums[m] += norm;
            row.push_back(TextTable::fixed(norm, 3));
        }
        table.row(row);
    }
    std::vector<std::string> avg = {"average"};
    for (const double s : sums) {
        avg.push_back(TextTable::fixed(
            s / static_cast<double>(simSubset().size()), 3));
    }
    table.row(avg);
    // The MOD workloads ride along (outside the paper's average):
    // with one ordering point per update and rare dfences they leave
    // the persistency models much less to overlap, so the model gap
    // shrinks toward the ideal.
    for (const auto &name : modOrder()) {
        core::RunResult result = runForAnalysis(name, config);
        const auto results =
            sim::runModels(result.runtime->traces(), params, kinds);
        const double base = static_cast<double>(results[0].cycles);
        std::vector<std::string> row = {name};
        for (const auto &r : results) {
            row.push_back(TextTable::fixed(
                static_cast<double>(r.cycles) / base, 3));
        }
        table.row(row);
    }
    table.print();

    const double n = static_cast<double>(simSubset().size());
    const double x86_nvm = sums[0] / n, x86_pwq = sums[1] / n;
    const double hops_nvm = sums[2] / n, hops_pwq = sums[3] / n;
    const double ideal = sums[4] / n;
    std::printf(
        "\nKey deltas (paper values in parentheses):\n"
        "  PWQ gain on x86-64:    %5.1f%%  (15.5%%)\n"
        "  HOPS vs x86-64 (NVM):  %5.1f%%  (24.3%%)\n"
        "  HOPS (NVM) vs x86 PWQ: %5.1f%%  (10%%)\n"
        "  PWQ gain on HOPS:      %5.1f%%  (1.4%%)\n"
        "  ideal vs x86-64 (NVM): %5.1f%%  (40.7%%)\n",
        100.0 * (x86_nvm - x86_pwq), 100.0 * (x86_nvm - hops_nvm),
        100.0 * (x86_pwq - hops_nvm) / x86_pwq,
        100.0 * (hops_nvm - hops_pwq) / hops_nvm,
        100.0 * (x86_nvm - ideal));
    return 0;
}

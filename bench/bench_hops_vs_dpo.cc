/**
 * @file
 * Extension bench: HOPS against DPO (related work, §7 of the paper),
 * plus the effect of the paper's future-work PB epoch coalescing.
 *
 * DPO is modeled under Buffered Strict Persistency on x86-TSO as the
 * paper critiques it: updates within an epoch flush serially and
 * every PB write-back is broadcast. Expect DPO to trail HOPS on
 * multi-line epochs, and coalescing to help most where the suite's
 * abundant same-thread self-dependencies collapse repeated lines.
 */

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "sim/simulator.hh"

using namespace whisper;
using namespace whisper::bench;

int
main()
{
    const core::AppConfig config = simConfig();
    TextTable table("Extension — HOPS vs DPO (BSP) vs HOPS+coalescing "
                    "(cycles normalized to HOPS NVM)");
    table.header({"Benchmark", "HOPS (NVM)", "DPO (BSP)",
                  "HOPS+coalesce", "PM write-backs", "with coalesce",
                  "saved"});

    // One shared params object: every model in a comparison must see
    // the same device configuration, so derive the coalescing variant
    // from the base instead of default-constructing per model.
    const sim::SimParams params;
    sim::SimParams coal = params;
    coal.pbCoalesce = true;

    std::vector<std::string> names = simSubset();
    names.insert(names.end(), modOrder().begin(), modOrder().end());
    for (const auto &name : names) {
        core::RunResult result = runForAnalysis(name, config);
        const trace::TraceSet &traces = result.runtime->traces();

        sim::Simulator hops(params, sim::ModelKind::HopsNvm);
        const auto r_hops = hops.run(traces);

        sim::Simulator dpo(params, sim::ModelKind::Dpo);
        const auto r_dpo = dpo.run(traces);

        sim::Simulator hops_c(coal, sim::ModelKind::HopsNvm);
        const auto r_coal = hops_c.run(traces);

        const double base = static_cast<double>(r_hops.cycles);
        const double saved =
            1.0 - static_cast<double>(r_coal.persist.linesDrained) /
                      static_cast<double>(r_hops.persist.linesDrained);
        table.row({name, "1.000",
                   TextTable::fixed(
                       static_cast<double>(r_dpo.cycles) / base, 3),
                   TextTable::fixed(
                       static_cast<double>(r_coal.cycles) / base, 3),
                   TextTable::num(r_hops.persist.linesDrained),
                   TextTable::num(r_coal.persist.linesDrained),
                   TextTable::percent(saved, 1)});
    }
    table.print();
    std::puts("\nObservation: BSP's serialized epoch flushing costs "
              "whenever epochs exceed one line. Coalescing trades a "
              "slightly larger in-flight epoch at the dfence for a "
              "reduction in PM write-back traffic — the multi-version "
              "collapse of the suite's abundant same-thread "
              "self-dependencies, which matters for NVM endurance "
              "(the paper's §5.3 write-endurance concern).");
    return 0;
}

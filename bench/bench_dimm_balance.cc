/**
 * @file
 * DIMM-balanced vs naive placement under the calibrated device model.
 *
 * Real PM DIMMs service write-backs independently, so a transaction
 * whose flush burst lands on one DIMM serializes on that DIMM's
 * internal write gap while the others idle (DESIGN.md §13). This
 * bench records the same slab transaction workload twice — once with
 * the historical next-fit allocator, once with HESH-style
 * DIMM-balanced placement — and replays both traces through the
 * calibrated (optane) device model on a coarse-interleave geometry
 * (64 KiB chunks across 4 DIMMs), where next-fit's consecutive blocks
 * pile onto one DIMM per transaction while balanced placement fans
 * each burst across all four.
 *
 * Exit status enforces the acceptance floor: the balanced trace's
 * simulated makespan must beat the naive trace's.
 *
 * A second table shows the same policy at the Halo layer: segment
 * usage per DIMM for Sequential vs DimmSpread placement when two
 * threads each fill only part of their segment range — Sequential
 * parks each thread on one DIMM, DimmSpread cycles all four.
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "alloc/slab_alloc.hh"
#include "common/dimm.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/runtime.hh"
#include "halo/halo_segment.hh"
#include "sim/simulator.hh"

using namespace whisper;

namespace
{

/** Coarse interleave: 1024-line (64 KiB) chunks across 4 DIMMs. */
const DimmConfig kDimms{4, 1024};

constexpr std::size_t kPool = 64 << 20;
constexpr Addr kSlabBase = 1 << 20;
constexpr std::size_t kSlabBytes = 16 << 20;
constexpr unsigned kThreads = 4;
constexpr std::uint64_t kTxs = 240;
constexpr std::uint64_t kBlocksPerTx = 8;

/**
 * Record the transaction workload: each tx allocates 8 64-byte
 * blocks, fills each, queues a flush for each and commits the batch
 * with one durability fence. Transactions round-robin over the
 * per-thread contexts, recorded sequentially so both variants see
 * the identical global order.
 */
sim::SimResult
runVariant(bool balanced, const sim::SimParams &params,
           alloc::AllocStats &stats_out,
           std::array<std::uint64_t, kMaxDimms> &live_out)
{
    core::Runtime rt(kPool, kThreads);
    alloc::SlabAllocator slab(rt.ctx(0), kSlabBase, kSlabBytes);
    if (balanced)
        slab.enableDimmBalance(kDimms);
    rt.clearTraces(); // drop the formatting stores

    for (std::uint64_t tx = 0; tx < kTxs; tx++) {
        pm::PmContext &ctx = rt.ctx(tx % kThreads);
        Addr blocks[kBlocksPerTx];
        for (std::uint64_t b = 0; b < kBlocksPerTx; b++) {
            blocks[b] = slab.alloc(ctx, 64);
            panic_if(blocks[b] == kNullAddr, "slab exhausted");
        }
        std::uint64_t payload[8] = {tx};
        for (std::uint64_t b = 0; b < kBlocksPerTx; b++) {
            payload[1] = b;
            ctx.store(blocks[b], payload, sizeof(payload));
            ctx.flush(blocks[b], 64);
        }
        ctx.fence(pm::FenceKind::Durability);
    }

    stats_out = slab.stats();
    live_out = slab.dimmLiveBlocks();
    sim::Simulator simulator(params, sim::ModelKind::X86Nvm);
    return simulator.run(rt.traces());
}

/** Halo placement demo: two threads each open 8 of their segments. */
std::vector<std::uint64_t>
haloUsage(halo::HaloSegmentAllocator::Placement placement)
{
    core::Runtime rt(kPool, 2);
    halo::HaloSegmentAllocator::Config config;
    config.base = 0;
    config.bytes = 64 * halo::kSegmentBytes;
    config.threads = 2;
    config.placement = placement;
    config.dimms = kDimms;
    halo::HaloSegmentAllocator alloc(config);

    const std::uint64_t appends = 8 * halo::kRecordsPerSegment;
    for (ThreadId tid = 0; tid < 2; tid++) {
        for (std::uint64_t i = 0; i < appends; i++) {
            bool sealed = false;
            const Addr slot =
                alloc.append(rt.ctx(tid), tid, i, sealed);
            panic_if(slot == kNullAddr, "halo range exhausted");
        }
    }
    return alloc.dimmUsage();
}

std::vector<std::string>
usageRow(const char *name, const std::vector<std::uint64_t> &usage)
{
    std::vector<std::string> row = {name};
    for (unsigned d = 0; d < kDimms.dimms(); d++)
        row.push_back(TextTable::num(usage[d]));
    return row;
}

} // namespace

int
main()
{
    sim::SimParams params;
    params.device = sim::PmDeviceParams::optaneCalibrated();
    params.device.dimmMap = kDimms;

    alloc::AllocStats naive_stats, balanced_stats;
    std::array<std::uint64_t, kMaxDimms> naive_live{}, balanced_live{};
    const sim::SimResult naive =
        runVariant(false, params, naive_stats, naive_live);
    const sim::SimResult balanced =
        runVariant(true, params, balanced_stats, balanced_live);

    TextTable table("Slab placement under the calibrated device model "
                    "(4 DIMMs, 64 KiB interleave)");
    table.header({"placement", "makespan cyc", "queue wait cyc",
                  "dimm0", "dimm1", "dimm2", "dimm3"});
    const auto row = [&](const char *name, const sim::SimResult &r,
                         const std::array<std::uint64_t, kMaxDimms>
                             &live) {
        table.row({name, TextTable::num(r.cycles),
                   TextTable::num(r.device.queueWaitCycles),
                   TextTable::num(live[0]), TextTable::num(live[1]),
                   TextTable::num(live[2]), TextTable::num(live[3])});
    };
    row("next-fit (naive)", naive, naive_live);
    row("dimm-balanced", balanced, balanced_live);
    table.print();
    const double speedup = static_cast<double>(naive.cycles) /
                           static_cast<double>(balanced.cycles);
    std::printf("\nbalanced speedup over naive: %.3fx "
                "(%llu -> %llu cycles, %llu allocs each)\n",
                speedup, (unsigned long long)naive.cycles,
                (unsigned long long)balanced.cycles,
                (unsigned long long)balanced_stats.allocs);

    TextTable halo_table("Halo segment usage per DIMM "
                         "(2 threads, 8 segments each)");
    halo_table.header(
        {"placement", "dimm0", "dimm1", "dimm2", "dimm3"});
    halo_table.row(usageRow(
        "sequential",
        haloUsage(halo::HaloSegmentAllocator::Placement::Sequential)));
    halo_table.row(usageRow(
        "dimm-spread",
        haloUsage(halo::HaloSegmentAllocator::Placement::DimmSpread)));
    std::puts("");
    halo_table.print();

    // Acceptance floor: balanced placement must win under the
    // calibrated model.
    if (balanced.cycles >= naive.cycles) {
        std::fprintf(stderr,
                     "FAIL: balanced makespan %llu !< naive %llu\n",
                     (unsigned long long)balanced.cycles,
                     (unsigned long long)naive.cycles);
        return 1;
    }
    std::puts("\nok: balanced placement beats naive under the "
              "calibrated device model");
    return 0;
}

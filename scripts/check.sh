#!/usr/bin/env bash
# Tier-1 verification plus documentation checks, in one command.
#
#   scripts/check.sh            # build + ctest + docs checks
#   scripts/check.sh --docs-only
#
# Docs checks: (1) doxygen builds warning-clean over src/ and
# examples/ (skipped with a notice when doxygen is not installed),
# and (2) every relative markdown link in the repo's *.md files
# resolves to an existing file.
set -euo pipefail

cd "$(dirname "$0")/.."
failures=0

# Per-leg timeout (seconds): a hung fuzz or sanitizer leg must fail
# CI, not stall it. Override with CHECK_LEG_TIMEOUT; the `timeout`
# binary is coreutils, so fall back to no wrapper where it's absent.
leg_timeout="${CHECK_LEG_TIMEOUT:-1800}"
run_leg() {
    local rc=0
    if command -v timeout >/dev/null 2>&1; then
        timeout --kill-after=30 "$leg_timeout" "$@" || rc=$?
        if [[ $rc == 124 || $rc == 137 ]]; then
            echo "FAIL: leg timed out after ${leg_timeout}s: $*"
        fi
    else
        "$@" || rc=$?
    fi
    return $rc
}

docs_only=0
skip_asan=0
skip_tsan=0
for arg in "$@"; do
    case "$arg" in
        --docs-only) docs_only=1 ;;
        --no-asan) skip_asan=1 ;;
        --no-tsan) skip_tsan=1 ;;
    esac
done

# ---------------------------------------------------------------
# Tier-1: configure, build, run the test suite.
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 ]]; then
    echo "== tier-1: build + tests =="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --
    (cd build && run_leg ctest --output-on-failure -j "$(nproc)")
fi

# ---------------------------------------------------------------
# ASan+UBSan: rebuild the test binary with sanitizers and run the
# memory-sensitive suites (PM device, txlibs, crash fuzzer — the
# code that unwinds exceptions through transaction destructors).
# Skip with --no-asan when iterating on docs.
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 && "$skip_asan" == 0 ]]; then
    echo "== asan+ubsan: fuzz/pm/txlib tests =="
    cmake -B build-asan -S . -DWHISPER_SANITIZE=ON >/dev/null
    cmake --build build-asan -j "$(nproc)" --target whisper_tests
    run_leg build-asan/tests/whisper_tests \
        --gtest_filter='CrashFuzz.*:PmPool.*:PmContext.*:Bloom.*:Mnemosyne*:Nvml*:Mod*'

    # Media-fault smoke sweep, one app per access layer, under ASan:
    # 256 (crash point x fault plan) cases each must end scrubbed or
    # named Degraded — zero violations, zero recovery-path panics.
    echo "== asan: media-fault sweep (one app per layer) =="
    cmake --build build-asan -j "$(nproc)" --target whisper_cli
    run_leg build-asan/examples/whisper_cli crashfuzz --cases 256 \
        --jobs "$(nproc)" --faults \
        --apps echo,vacation,hashmap,nfs,mod-hashmap
fi

# ---------------------------------------------------------------
# TSan: a separate build tree (TSan and ASan cannot coexist) running
# the MOD concurrency stress tests and the multi-threaded crash-fuzz
# replays — racing striped writers, lock-free readers, grace GC.
# Skip with --no-tsan when iterating on docs.
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 && "$skip_tsan" == 0 ]]; then
    echo "== tsan: MOD concurrency stress =="
    cmake -B build-tsan -S . -DWHISPER_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$(nproc)" --target whisper_tests
    run_leg build-tsan/tests/whisper_tests \
        --gtest_filter='ModConcurrency.*:ModHeap.*:CrashFuzz.MultiThread*'
fi

# ---------------------------------------------------------------
# MOD recovery contract: a bounded crashfuzz sweep over the two MOD
# applications (>=128 cases each) must report zero violations — the
# root swap always commits a fully-persisted structure and the
# garbage lanes never reclaim a reachable node. The second sweep is
# the concurrent variant: >=256 cases per structure with three
# racing writer threads pinned to each case's gate schedule (512+
# multi-threaded cases total).
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 ]]; then
    echo "== crashfuzz: MOD recovery sweep =="
    run_leg build/examples/whisper_cli crashfuzz --cases 128 \
        --jobs "$(nproc)" --apps mod-hashmap,mod-vector
    echo "== crashfuzz: concurrent MOD recovery sweep =="
    run_leg build/examples/whisper_cli crashfuzz --cases 256 \
        --threads 3 --ops 12 --jobs "$(nproc)" \
        --apps mod-hashmap,mod-vector
fi

# ---------------------------------------------------------------
# Docs check 1: doxygen must run warning-clean.
# ---------------------------------------------------------------
echo "== docs: doxygen =="
if command -v doxygen >/dev/null 2>&1; then
    rm -f doxygen_warnings.log
    doxygen Doxyfile
    if [[ -s doxygen_warnings.log ]]; then
        echo "FAIL: doxygen produced warnings:"
        cat doxygen_warnings.log
        failures=$((failures + 1))
    else
        echo "ok: doxygen build warning-clean"
    fi
else
    echo "skip: doxygen not installed"
fi

# ---------------------------------------------------------------
# Docs check 2: no dead relative links in the markdown files.
# Matches [text](target) where target is not an URL or anchor, and
# verifies the target (sans #fragment) exists relative to the file.
# ---------------------------------------------------------------
echo "== docs: markdown links =="
dead=0
while IFS= read -r md; do
    dir=$(dirname "$md")
    while IFS= read -r target; do
        [[ -z "$target" ]] && continue
        path="${target%%#*}"
        [[ -z "$path" ]] && continue # pure #anchor
        if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
            echo "FAIL: dead link in $md -> $target"
            dead=$((dead + 1))
        fi
    done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$md" |
             sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/' |
             grep -vE '^(https?|mailto):' || true)
done < <(find . -name '*.md' -not -path './build*' -not -path './docs/html/*')

if [[ "$dead" == 0 ]]; then
    echo "ok: all relative markdown links resolve"
else
    failures=$((failures + 1))
fi

if [[ "$failures" != 0 ]]; then
    echo "check.sh: FAILED ($failures check(s))"
    exit 1
fi
echo "check.sh: all checks passed"

#!/usr/bin/env bash
# Tier-1 verification plus documentation checks, in one command.
#
#   scripts/check.sh            # build + ctest + docs checks
#   scripts/check.sh --docs-only
#
# Docs checks: (1) doxygen builds warning-clean over src/ and
# examples/ (skipped with a notice when doxygen is not installed),
# and (2) every relative markdown link in the repo's *.md files
# resolves to an existing file.
set -euo pipefail

cd "$(dirname "$0")/.."
failures=0

# Per-leg timeout (seconds): a hung fuzz or sanitizer leg must fail
# CI, not stall it. Override with CHECK_LEG_TIMEOUT; the `timeout`
# binary is coreutils, so fall back to no wrapper where it's absent.
leg_timeout="${CHECK_LEG_TIMEOUT:-1800}"
run_leg() {
    local rc=0
    if command -v timeout >/dev/null 2>&1; then
        timeout --kill-after=30 "$leg_timeout" "$@" || rc=$?
        if [[ $rc == 124 || $rc == 137 ]]; then
            echo "FAIL: leg timed out after ${leg_timeout}s: $*"
        fi
    else
        "$@" || rc=$?
    fi
    return $rc
}

docs_only=0
skip_asan=0
skip_tsan=0
for arg in "$@"; do
    case "$arg" in
        --docs-only) docs_only=1 ;;
        --no-asan) skip_asan=1 ;;
        --no-tsan) skip_tsan=1 ;;
    esac
done

# ---------------------------------------------------------------
# Tier-1: configure, build, run the test suite.
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 ]]; then
    echo "== tier-1: build + tests =="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --
    (cd build && run_leg ctest --output-on-failure -j "$(nproc)")
fi

# ---------------------------------------------------------------
# ASan+UBSan: rebuild the test binary with sanitizers and run the
# memory-sensitive suites (PM device, txlibs, crash fuzzer — the
# code that unwinds exceptions through transaction destructors).
# Skip with --no-asan when iterating on docs.
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 && "$skip_asan" == 0 ]]; then
    echo "== asan+ubsan: fuzz/pm/txlib tests =="
    cmake -B build-asan -S . -DWHISPER_SANITIZE=ON >/dev/null
    cmake --build build-asan -j "$(nproc)" --target whisper_tests
    run_leg build-asan/tests/whisper_tests \
        --gtest_filter='CrashFuzz.*:PmPool.*:PmContext.*:Bloom.*:Mnemosyne*:Nvml*:Mod*'

    # Media-fault smoke sweep, one app per access layer, under ASan:
    # 256 (crash point x fault plan) cases each must end scrubbed or
    # named Degraded — zero violations, zero recovery-path panics.
    echo "== asan: media-fault sweep (one app per layer) =="
    cmake --build build-asan -j "$(nproc)" --target whisper_cli
    run_leg build-asan/examples/whisper_cli crashfuzz --cases 256 \
        --jobs "$(nproc)" --faults \
        --apps echo,vacation,hashmap,nfs,mod-hashmap,halo-hashmap
fi

# ---------------------------------------------------------------
# TSan: a separate build tree (TSan and ASan cannot coexist) running
# the MOD concurrency stress tests and the multi-threaded crash-fuzz
# replays — racing striped writers, lock-free readers, grace GC.
# Skip with --no-tsan when iterating on docs.
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 && "$skip_tsan" == 0 ]]; then
    echo "== tsan: MOD + halo concurrency stress =="
    cmake -B build-tsan -S . -DWHISPER_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$(nproc)" --target whisper_tests
    run_leg build-tsan/tests/whisper_tests \
        --gtest_filter='ModConcurrency.*:ModHeap.*:CrashFuzz.MultiThread*:HaloDirectory.ReadersStayConsistentThroughDoubling:HaloFuzz.*:Lincheck.*:LincheckWorkload.*:LincheckFuzz.CaseReplayIsBitIdentical'
fi

# ---------------------------------------------------------------
# MOD recovery contract: a bounded crashfuzz sweep over the two MOD
# applications (>=128 cases each) must report zero violations — the
# root swap always commits a fully-persisted structure and the
# garbage lanes never reclaim a reachable node. The second sweep is
# the concurrent variant: >=256 cases per structure with three
# racing writer threads pinned to each case's gate schedule (512+
# multi-threaded cases total).
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 ]]; then
    echo "== crashfuzz: MOD recovery sweep =="
    run_leg build/examples/whisper_cli crashfuzz --cases 128 \
        --jobs "$(nproc)" --apps mod-hashmap,mod-vector
    echo "== crashfuzz: concurrent MOD recovery sweep =="
    run_leg build/examples/whisper_cli crashfuzz --cases 256 \
        --threads 3 --ops 12 --jobs "$(nproc)" \
        --apps mod-hashmap,mod-vector
fi

# ---------------------------------------------------------------
# Halo (Hybrid layer) recovery contract. The DRAM index is rebuilt
# by segment scan, so the sweep stresses the reconstruct-not-replay
# path: 256 multi-threaded crash+fault cases must hold the
# committed-reachable / uncommitted-invisible invariant, and the
# whole sweep run twice must print bit-identical per-app digests —
# the digest folds recovery images, fault outcomes and transient
# read counts, so any scheduling leak into the durable state or the
# verification oracle shows up here. A gtest leg then asserts the
# recovery scan itself is job-count-invariant: rebuildDigest() at
# --jobs 1 must equal --jobs $(nproc).
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 ]]; then
    echo "== crashfuzz: halo crash+fault sweep (rerun digest stability) =="
    halo_sweep() {
        run_leg build/examples/whisper_cli crashfuzz --cases 256 \
            --threads 3 --ops 12 --jobs "$(nproc)" --faults \
            --no-shrink --apps halo-hashmap
    }
    halo_a=$(halo_sweep) || failures=$((failures + 1))
    halo_b=$(halo_sweep) || failures=$((failures + 1))
    if [[ -z "$halo_a" || "$halo_a" != "$halo_b" ]]; then
        echo "FAIL: halo sweep digests differ between reruns"
        failures=$((failures + 1))
    else
        echo "ok: halo 256-case crash+fault sweep digest stable"
    fi
    echo "== halo: recovery-scan --jobs rebuild-digest equality =="
    run_leg build/tests/whisper_tests \
        --gtest_filter='HaloStore.RebuildDigestIdenticalAtAnyJobCount'
fi

# ---------------------------------------------------------------
# Durable linearizability (DESIGN.md §14): every concurrent layer
# sweeps 256 crash+fault cases with the history checker on — three
# racing writer threads per case, every key must find a witness
# linearization explaining the recovered state. The sweep run twice
# must be bit-identical (the lincheck verdicts fold into the case
# digest), so a scheduling leak into the recorder or checker cannot
# hide. A violation exits nonzero on its own; the rerun diff guards
# determinism.
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 ]]; then
    echo "== crashfuzz: durable-linearizability sweep (rerun stability) =="
    lincheck_sweep() {
        run_leg build/examples/whisper_cli crashfuzz --cases 256 \
            --threads 3 --ops 12 --jobs "$(nproc)" --faults \
            --lincheck --no-shrink \
            --apps mod-hashmap,mod-vector,halo-hashmap
    }
    lin_a=$(lincheck_sweep) || failures=$((failures + 1))
    lin_b=$(lincheck_sweep) || failures=$((failures + 1))
    if [[ -z "$lin_a" || "$lin_a" != "$lin_b" ]]; then
        echo "FAIL: lincheck sweep output differs between reruns"
        failures=$((failures + 1))
    else
        echo "ok: lincheck 256-case sweep stable across reruns"
    fi
fi

# ---------------------------------------------------------------
# Workload smoke: one YCSB mix on two access layers. Each run must
# verify its invariants, and two runs at the same seed must print an
# identical JSON object — the determinism contract the latency
# numbers in docs/WORKLOADS.md rest on.
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 ]]; then
    echo "== workload: YCSB digest-stability smoke =="
    for app in hashmap mod-hashmap; do
        a=$(run_leg build/examples/whisper_cli workload --app "$app" \
            --mix B --keys 2000 --threads 2 --ops 200 --json)
        b=$(run_leg build/examples/whisper_cli workload --app "$app" \
            --mix B --keys 2000 --threads 2 --ops 200 --json)
        if [[ "$a" != "$b" ]]; then
            echo "FAIL: workload JSON unstable across runs for $app"
            failures=$((failures + 1))
        elif ! grep -q '"verified":true' <<<"$a"; then
            echo "FAIL: workload verification failed for $app"
            failures=$((failures + 1))
        else
            echo "ok: $app mix B deterministic and verified"
        fi
    done
fi

# ---------------------------------------------------------------
# Elision equivalence: the same media-fault sweep with and without
# the txlib elision policy must produce identical per-case
# VerifyReport verdicts. Crash images, digests and the set of cases
# that end Degraded legitimately differ — elision changes the PM-op
# schedule, so case K cuts a different op and the fault plan lands
# on a different dirty-line set — but the contract verdict (held,
# possibly degraded, vs violated) may not: every elided operation
# was provably redundant.
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 ]]; then
    echo "== crashfuzz: elision-on/off fault-sweep equivalence =="
    verdicts() {
        run_leg build/examples/whisper_cli crashfuzz --cases 64 \
            --jobs "$(nproc)" --faults --no-shrink --json \
            --apps vacation,hashmap "$@" |
            grep -oE '"ok":(true|false),"degraded":(true|false)' |
            awk -F'[:,]' '{print ($2 == "true" || $4 == "true") \
                           ? "held" : "VIOLATED"}'
    }
    base=$(verdicts)
    elided=$(verdicts --elide)
    if [[ -z "$base" || "$base" != "$elided" ]]; then
        echo "FAIL: elision changed per-case recovery verdicts"
        failures=$((failures + 1))
    elif grep -q VIOLATED <<<"$base"; then
        echo "FAIL: fault sweep violated recovery invariants"
        failures=$((failures + 1))
    else
        echo "ok: elided sweep matches baseline verdict for verdict"
    fi
fi

# ---------------------------------------------------------------
# Optimizer determinism: the redundancy report is a commutative fold
# of per-thread summaries, so `optimize` output (table and JSON)
# must be bit-identical at any --jobs value.
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 ]]; then
    echo "== optimize: --jobs determinism =="
    opt_trace=$(mktemp /tmp/whisper-optimize-XXXXXX.bin)
    run_leg build/examples/whisper_cli record vacation \
        "$opt_trace" 120 4 >/dev/null
    one=$(run_leg build/examples/whisper_cli optimize "$opt_trace" \
        --jobs 1; run_leg build/examples/whisper_cli optimize \
        "$opt_trace" --jobs 1 --json)
    many=$(run_leg build/examples/whisper_cli optimize "$opt_trace" \
        --jobs "$(nproc)"; run_leg build/examples/whisper_cli \
        optimize "$opt_trace" --jobs "$(nproc)" --json)
    rm -f "$opt_trace"
    if [[ -z "$one" || "$one" != "$many" ]]; then
        echo "FAIL: optimize output varies with --jobs"
        failures=$((failures + 1))
    elif ! grep -qE '"redundant":[1-9]' <<<"$one"; then
        echo "FAIL: optimize found no redundancy on a vacation trace"
        failures=$((failures + 1))
    else
        echo "ok: optimize bit-identical at --jobs 1 and $(nproc)"
    fi
fi

# ---------------------------------------------------------------
# PM device model (DESIGN.md §13): the default device must be the
# paper's Table 3 machine, byte-identical whether the flag is given
# or not; the calibrated (optane) model's cycle counts are pinned on
# a deterministic workload trace and must not vary between runs; and
# DIMM-balanced placement must beat naive next-fit under the
# calibrated model (bench_dimm_balance enforces its own floor).
# ---------------------------------------------------------------
if [[ "$docs_only" == 0 ]]; then
    echo "== device model: table3 identity + optane goldens =="
    dev_trace=$(mktemp /tmp/whisper-device-XXXXXX.bin)
    run_leg build/examples/whisper_cli workload --app hashmap \
        --mix A --keys 1000 --threads 2 --ops 150 \
        --trace "$dev_trace" >/dev/null
    plain=$(run_leg build/examples/whisper_cli simulate "$dev_trace")
    table3=$(run_leg build/examples/whisper_cli simulate \
        "$dev_trace" --device table3)
    optane=$(run_leg build/examples/whisper_cli simulate \
        "$dev_trace" --device optane)
    optane2=$(run_leg build/examples/whisper_cli simulate \
        "$dev_trace" --device optane)
    rm -f "$dev_trace"
    device_ok=1
    if [[ -z "$plain" || "$plain" != "$table3" ]]; then
        echo "FAIL: simulate --device table3 differs from default"
        device_ok=0
    fi
    if [[ "$optane" != "$optane2" ]]; then
        echo "FAIL: calibrated simulate output varies between runs"
        device_ok=0
    fi
    # Uniform goldens (pre-device-model numbers) and calibrated
    # goldens on the deterministic hashmap/mix-A workload trace.
    for want in \
        'x86-64 \(NVM\)  *120590' 'HOPS \(NVM\)  *36095' \
        'ideal.*24094'
    do
        if ! grep -qE "$want" <<<"$plain"; then
            echo "FAIL: table3 golden '$want' missing from simulate"
            device_ok=0
        fi
    done
    for want in \
        'x86-64 \(NVM\)  *109318' 'HOPS \(NVM\)  *34475' \
        'ideal.*21550' 'PM device \(per-DIMM line write-backs\)'
    do
        if ! grep -qE "$want" <<<"$optane"; then
            echo "FAIL: optane golden '$want' missing from simulate"
            device_ok=0
        fi
    done
    if ! run_leg build/bench/bench_dimm_balance >/dev/null; then
        echo "FAIL: bench_dimm_balance (balanced must beat naive)"
        device_ok=0
    fi
    if [[ "$device_ok" == 1 ]]; then
        echo "ok: table3 identity, optane goldens, balance floor"
    else
        failures=$((failures + 1))
    fi
fi

# ---------------------------------------------------------------
# Docs check 1: doxygen must run warning-clean.
# ---------------------------------------------------------------
echo "== docs: doxygen =="
if command -v doxygen >/dev/null 2>&1; then
    rm -f doxygen_warnings.log
    doxygen Doxyfile
    if [[ -s doxygen_warnings.log ]]; then
        echo "FAIL: doxygen produced warnings:"
        cat doxygen_warnings.log
        failures=$((failures + 1))
    else
        echo "ok: doxygen build warning-clean"
    fi
else
    echo "skip: doxygen not installed"
fi

# ---------------------------------------------------------------
# Docs check 2: no dead relative links in the markdown files.
# Matches [text](target) where target is not an URL or anchor, and
# verifies the target (sans #fragment) exists relative to the file.
# ---------------------------------------------------------------
echo "== docs: markdown links =="
dead=0
while IFS= read -r md; do
    dir=$(dirname "$md")
    while IFS= read -r target; do
        [[ -z "$target" ]] && continue
        path="${target%%#*}"
        [[ -z "$path" ]] && continue # pure #anchor
        if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
            echo "FAIL: dead link in $md -> $target"
            dead=$((dead + 1))
        fi
    done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$md" |
             sed -E 's/^\[[^]]*\]\(([^)]+)\)$/\1/' |
             grep -vE '^(https?|mailto):' || true)
done < <(find . -name '*.md' -not -path './build*' -not -path './docs/html/*')

if [[ "$dead" == 0 ]]; then
    echo "ok: all relative markdown links resolve"
else
    failures=$((failures + 1))
fi

# ---------------------------------------------------------------
# Docs check 3: docs/CLI.md must not drift from the binary's help.
# Every subcommand in `whisper_cli help` must be documented, every
# `whisper_cli <sub>` the docs mention must exist, and every flag the
# help advertises must appear in the docs.
# ---------------------------------------------------------------
echo "== docs: CLI drift (help vs docs/CLI.md) =="
if [[ -x build/examples/whisper_cli ]]; then
    drift=0
    help_out=$(build/examples/whisper_cli help)
    help_subs=$(awk '/^  whisper_cli /{print $2}' <<<"$help_out" |
                grep -v '^--' | sort -u)
    doc_subs=$(grep -oE 'whisper_cli (record|analyze|optimize|simulate|apps|workload|crashfuzz|lincheck|list|help)\b' \
               docs/CLI.md | awk '{print $2}' | sort -u)
    for sub in $help_subs; do
        if ! grep -qx "$sub" <<<"$doc_subs"; then
            echo "FAIL: subcommand '$sub' in help but not docs/CLI.md"
            drift=$((drift + 1))
        fi
    done
    for sub in $doc_subs; do
        if ! grep -qx "$sub" <<<"$help_subs"; then
            echo "FAIL: docs/CLI.md documents unknown subcommand '$sub'"
            drift=$((drift + 1))
        fi
    done
    while IFS= read -r flag; do
        if ! grep -q -- "$flag" docs/CLI.md; then
            echo "FAIL: flag '$flag' in help but not docs/CLI.md"
            drift=$((drift + 1))
        fi
    done < <(grep -oE '\-\-[a-z-]+' <<<"$help_out" | sort -u)
    # Access-layer drift: every layer name `whisper_cli apps` groups
    # by (Native, Library/*, FS/PMFS, Hybrid/Halo, ...) must appear
    # in docs/CLI.md, so a new layer cannot land without its docs row.
    while IFS= read -r layer; do
        if ! grep -q -- "$layer" docs/CLI.md; then
            echo "FAIL: layer '$layer' in apps output but not docs/CLI.md"
            drift=$((drift + 1))
        fi
    done < <(build/examples/whisper_cli apps --ops 8 --threads 2 |
             awk '$1 ~ /^([A-Za-z]+\/[A-Za-z]+|Native)$/ {print $1}' |
             sort -u)
    if [[ "$drift" == 0 ]]; then
        echo "ok: docs/CLI.md matches whisper_cli help"
    else
        failures=$((failures + 1))
    fi
else
    echo "skip: build/examples/whisper_cli not built"
fi

if [[ "$failures" != 0 ]]; then
    echo "check.sh: FAILED ($failures check(s))"
    exit 1
fi
echo "check.sh: all checks passed"

/**
 * @file
 * Unit tests for the core runtime, the HOPS programming API and the
 * harness life cycle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/harness.hh"
#include "core/hops.hh"
#include "core/verify_report.hh"

namespace whisper::core
{
namespace
{

TEST(Runtime, ContextsAreIndependentThreads)
{
    Runtime rt(1 << 20, 4);
    EXPECT_EQ(rt.maxThreads(), 4u);
    EXPECT_EQ(rt.ctx(0).tid(), 0u);
    EXPECT_EQ(rt.ctx(3).tid(), 3u);
}

TEST(Runtime, RunThreadsExecutesAll)
{
    Runtime rt(1 << 20, 4);
    std::atomic<unsigned> ran{0};
    std::atomic<std::uint32_t> tid_mask{0};
    rt.runThreads(4, [&](pm::PmContext &ctx, ThreadId tid) {
        (void)ctx;
        ran++;
        tid_mask |= 1u << tid;
    });
    EXPECT_EQ(ran.load(), 4u);
    EXPECT_EQ(tid_mask.load(), 0xFu);
}

TEST(Runtime, ThreadsShareTheClock)
{
    Runtime rt(1 << 20, 2);
    rt.ctx(0).compute(100);
    const Tick t0 = rt.ctx(1).now();
    EXPECT_GE(t0, 100u);
}

TEST(Runtime, CrashClearsPendingState)
{
    Runtime rt(1 << 20, 1);
    pm::PmContext &ctx = rt.ctx(0);
    const std::uint64_t v = 5;
    ctx.store(0, &v, 8);
    ctx.flush(0, 8);
    rt.crashHard();
    EXPECT_TRUE(ctx.pendingFlushes().empty());
    EXPECT_EQ(*rt.pool().at<std::uint64_t>(0), 0u);
}

TEST(Runtime, DuplicateFlushesCoalescePerFenceInterval)
{
    // Regression: flushing the same line twice before a fence used to
    // queue (and trace) two writebacks; hardware writes the line back
    // once per drain, so the second flush must be absorbed.
    Runtime rt(1 << 20, 1);
    pm::PmContext &ctx = rt.ctx(0);
    const std::uint64_t v = 5;
    ctx.store(0, &v, 8);
    ctx.flush(0, 8);
    ctx.flush(0, 8);
    ctx.flush(16, 8); // same line: absorbed too
    EXPECT_EQ(ctx.pendingFlushes().size(), 1u);
    ctx.fence(pm::FenceKind::Durability);
    // The next interval flushes the line afresh.
    ctx.store(0, &v, 8);
    ctx.flush(0, 8);
    EXPECT_EQ(ctx.pendingFlushes().size(), 1u);
}

TEST(Hops, DfenceMakesTrackedStoresDurable)
{
    Runtime rt(1 << 20, 1);
    HopsContext hops(rt.ctx(0));
    const std::uint64_t v = 77;
    hops.store(0, &v, 8);
    hops.ofence();
    EXPECT_EQ(*rt.pool().durableAt<std::uint64_t>(0), 0u);
    hops.dfence();
    EXPECT_EQ(*rt.pool().durableAt<std::uint64_t>(0), 77u);
    EXPECT_EQ(hops.pendingRanges(), 0u);
}

TEST(Hops, BufferedEpochsLostOnCrashBeforeDfence)
{
    Runtime rt(1 << 20, 1);
    HopsContext hops(rt.ctx(0));
    const std::uint64_t v = 1;
    hops.store(0, &v, 8);
    hops.ofence();
    hops.store(64, &v, 8);
    rt.crashHard();
    EXPECT_EQ(*rt.pool().at<std::uint64_t>(0), 0u);
    EXPECT_EQ(*rt.pool().at<std::uint64_t>(64), 0u);
}

TEST(Hops, NoFlushEventsInTrace)
{
    // The Figure 1(e) programming model: no clwb anywhere.
    Runtime rt(1 << 20, 1);
    HopsContext hops(rt.ctx(0));
    const std::uint64_t v = 9;
    hops.store(0, &v, 8);
    hops.ofence();
    hops.store(64, &v, 8);
    hops.dfence();
    const auto counters = rt.traces().totalCounters();
    EXPECT_EQ(counters.pmFlushes, 0u);
    EXPECT_EQ(counters.fences, 2u);
}

TEST(Hops, Figure1eExample)
{
    // The paper's running example: update pt = {x, y}, then set the
    // flag; x/y may reorder with each other but must precede flag.
    Runtime rt(1 << 20, 1);
    HopsContext hops(rt.ctx(0));
    struct Pt { std::uint64_t x; std::uint64_t y; };
    auto *pt = rt.pool().at<Pt>(0);
    auto *flag = rt.pool().at<std::uint64_t>(256);

    hops.set(pt->x, std::uint64_t{10});
    hops.set(pt->y, std::uint64_t{20});
    hops.ofence();                       // order pt before flag
    hops.set(*flag, std::uint64_t{1});
    hops.dfence();                       // durability point

    EXPECT_EQ(*rt.pool().durableAt<std::uint64_t>(0), 10u);
    EXPECT_EQ(*rt.pool().durableAt<std::uint64_t>(8), 20u);
    EXPECT_EQ(*rt.pool().durableAt<std::uint64_t>(256), 1u);
}

TEST(Harness, RunAppProducesTraces)
{
    AppConfig config;
    config.threads = 2;
    config.opsPerThread = 30;
    config.poolBytes = 96 << 20;
    RunResult result = runApp("hashmap", config);
    EXPECT_TRUE(result.verified);
    EXPECT_EQ(result.appName, "hashmap");
    EXPECT_EQ(result.layer, AccessLayer::LibNvml);
    EXPECT_GT(result.lastTick, result.firstTick);
    EXPECT_EQ(result.totalOps, 60u);
}

TEST(Harness, CrashAndVerifyCycle)
{
    AppConfig config;
    config.threads = 2;
    config.opsPerThread = 30;
    config.poolBytes = 96 << 20;
    RunResult result = runApp("ctree", config);
    ASSERT_TRUE(result.verified);
    CrashOptions opts;
    opts.seed = 99;
    opts.survival = 0.3;
    const VerifyReport report = crashAndVerify(result, opts);
    EXPECT_TRUE(report.ok()) << report.describe();
}

TEST(Harness, UnknownAppIsFatal)
{
    AppConfig config;
    EXPECT_DEATH(
        {
            auto app = createApp("definitely-not-an-app", config);
            (void)app;
        },
        "unknown WHISPER application");
}

TEST(AppConfigTest, ScaledRounding)
{
    AppConfig config;
    config.opsPerThread = 1000;
    EXPECT_EQ(config.scaled(0.5).opsPerThread, 500u);
    EXPECT_EQ(config.scaled(0.0001).opsPerThread, 1u);
}

TEST(AppConfigTest, ScaledClampsThreads)
{
    AppConfig config;
    config.opsPerThread = 1000;
    config.threads = 8;
    // Scaling down shrinks the thread count too (never below one);
    // scaling up leaves it alone — threads never exceed the request.
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned half = hw > 0 ? std::min(4u, hw) : 4u;
    EXPECT_EQ(config.scaled(0.5).threads, half);
    EXPECT_EQ(config.scaled(0.0001).threads, 1u);
    EXPECT_LE(config.scaled(4.0).threads, 8u);
    // Whatever the factor, the result fits the machine.
    if (hw > 0) {
        EXPECT_LE(config.scaled(1.0).threads, hw);
    }
}

TEST(AccessLayerNames, AllDistinct)
{
    EXPECT_STREQ(accessLayerName(AccessLayer::Native), "Native");
    EXPECT_STREQ(accessLayerName(AccessLayer::LibNvml),
                 "Library/NVML");
    EXPECT_STREQ(accessLayerName(AccessLayer::LibMnemosyne),
                 "Library/Mnemosyne");
    EXPECT_STREQ(accessLayerName(AccessLayer::Filesystem), "FS/PMFS");
    EXPECT_STREQ(accessLayerName(AccessLayer::LibMod), "Library/MOD");
}

TEST(VerifyReport, JsonRoundTripPreservesAllSeverities)
{
    VerifyReport rep("echo", "native");
    rep.fail("chain-broken", "bucket 17 cycle",
             {LineAddr{64}, LineAddr{128}});
    rep.degrade("echo-log-lost", "2 poisoned log lines dropped",
                {LineAddr{4096}});
    rep.degrade("pm-line-lost", "");
    ASSERT_FALSE(rep.ok());
    ASSERT_TRUE(rep.degraded());

    VerifyReport back;
    ASSERT_TRUE(fromJson(toJson(rep), back));
    EXPECT_EQ(back.app(), "echo");
    EXPECT_EQ(back.layer(), "native");
    EXPECT_EQ(back.ok(), rep.ok());
    EXPECT_EQ(back.degraded(), rep.degraded());
    ASSERT_EQ(back.violations().size(), rep.violations().size());
    for (std::size_t i = 0; i < rep.violations().size(); i++) {
        const VerifyViolation &a = rep.violations()[i];
        const VerifyViolation &b = back.violations()[i];
        EXPECT_EQ(b.invariant, a.invariant);
        EXPECT_EQ(b.detail, a.detail);
        EXPECT_EQ(b.severity, a.severity);
        EXPECT_EQ(b.lines, a.lines);
    }
    // A second trip through the encoder is bit-identical: tooling can
    // canonicalize a --json stream by re-emitting it.
    EXPECT_EQ(toJson(back), toJson(rep));
}

TEST(VerifyReport, JsonRoundTripDegradedOnlyStaysOk)
{
    VerifyReport rep("nstore", "native");
    rep.degrade("nstore-undo-record-lost",
                "active undo segment poisoned", {LineAddr{192}});
    ASSERT_TRUE(rep.ok());

    VerifyReport back;
    ASSERT_TRUE(fromJson(toJson(rep), back));
    EXPECT_TRUE(back.ok());
    EXPECT_TRUE(back.degraded());
    ASSERT_EQ(back.violations().size(), 1u);
    EXPECT_EQ(back.violations()[0].severity, Severity::Degraded);
    EXPECT_EQ(back.violations()[0].lines,
              (std::vector<LineAddr>{LineAddr{192}}));
}

TEST(VerifyReport, JsonEscapesAndRejectsMalformedInput)
{
    VerifyReport rep("q\"app", "l\\ayer");
    rep.fail("inv", "tab\there \"quoted\" back\\slash");
    VerifyReport back;
    ASSERT_TRUE(fromJson(toJson(rep), back));
    EXPECT_EQ(back.app(), "q\"app");
    EXPECT_EQ(back.layer(), "l\\ayer");
    ASSERT_EQ(back.violations().size(), 1u);
    EXPECT_EQ(back.violations()[0].detail,
              "tab\there \"quoted\" back\\slash");

    for (const char *bad :
         {"", "not json", "{\"app\":\"x\"", "[1,2,3]",
          "{\"app\":1,\"layer\":\"l\",\"ok\":true,"
          "\"degraded\":false,\"violations\":[]}"}) {
        VerifyReport out;
        EXPECT_FALSE(fromJson(bad, out)) << bad;
    }
}

} // namespace
} // namespace whisper::core

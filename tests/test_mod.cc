/**
 * @file
 * MOD layer tests: heap/GC mechanics, copy-on-write semantics, the
 * one-ordering-point-per-update contract, recovery mark-and-sweep,
 * and the §5.2 golden regression pinning MOD amplification below the
 * logging libraries.
 */

#include <gtest/gtest.h>

#include "analysis/access_mix.hh"
#include "analysis/epoch_stats.hh"
#include "core/harness.hh"
#include "core/runtime.hh"
#include "mod/mod_hashmap.hh"
#include "mod/mod_heap.hh"
#include "mod/mod_vector.hh"
#include "sim/simulator.hh"

namespace whisper
{
namespace
{

using core::AppConfig;
using core::RunResult;

constexpr std::size_t kPool = 32 << 20;
constexpr Addr kHeapBase = 4096; //!< leaves room for a structure table

AppConfig
appConfig()
{
    AppConfig config;
    config.threads = 4;
    config.opsPerThread = 120;
    config.poolBytes = 192 << 20;
    config.seed = 7;
    return config;
}

TEST(ModHeap, RetireReclaimsOnlyAtDurabilityPoints)
{
    core::Runtime rt(kPool, 1);
    pm::PmContext &ctx = rt.ctx(0);
    mod::ModHeap heap(ctx, kHeapBase, kPool - kHeapBase, 1);

    const Addr a = heap.alloc(ctx, 64);
    const Addr b = heap.alloc(ctx, 64);
    ASSERT_NE(a, kNullAddr);
    ASSERT_NE(b, kNullAddr);
    EXPECT_TRUE(heap.isLiveNode(a));
    EXPECT_EQ(heap.allocStats().bytesLive, 128u);

    heap.retire(ctx, 0, a);
    EXPECT_EQ(heap.gcStats().retired, 1u);
    EXPECT_EQ(heap.gcStats().reclaimed, 0u);
    EXPECT_TRUE(heap.isLiveNode(a)) << "retire must not free";

    heap.durabilityPoint(ctx, 0);
    EXPECT_EQ(heap.gcStats().reclaimed, 1u);
    EXPECT_EQ(heap.gcStats().durabilityPoints, 1u);
    EXPECT_FALSE(heap.isLiveNode(a));
    EXPECT_TRUE(heap.isLiveNode(b));
    EXPECT_EQ(heap.allocStats().bytesLive, 64u);
}

TEST(ModHeap, FullGarbageLaneForcesEarlyDurabilityPoint)
{
    core::Runtime rt(kPool, 1);
    pm::PmContext &ctx = rt.ctx(0);
    mod::ModHeap heap(ctx, kHeapBase, kPool - kHeapBase, 1);

    for (std::uint64_t i = 0; i < mod::ModHeap::kGcEntries + 1; i++) {
        const Addr node = heap.alloc(ctx, 64);
        ASSERT_NE(node, kNullAddr);
        heap.retire(ctx, 0, node);
    }
    // The ring may never wrap over an un-reclaimed entry: the 65th
    // retire has to force a durability point first.
    EXPECT_GE(heap.gcStats().durabilityPoints, 1u);
    EXPECT_GE(heap.gcStats().reclaimed, mod::ModHeap::kGcEntries);
}

TEST(ModVector, CowWritePreservesUntouchedElements)
{
    core::Runtime rt(kPool, 1);
    pm::PmContext &ctx = rt.ctx(0);
    mod::ModHeap heap(ctx, kHeapBase, kPool - kHeapBase, 1);
    mod::ModVector vec(ctx, heap, 0, 4);

    std::uint64_t init[8] = {10, 11, 12, 13, 14, 15, 16, 17};
    ASSERT_TRUE(vec.write(ctx, 0, 0, 0, init, 8, 8));
    std::uint64_t patch[3] = {90, 91, 92};
    ASSERT_TRUE(vec.write(ctx, 0, 0, 2, patch, 3, 8));

    const std::uint64_t expect[8] = {10, 11, 90, 91, 92, 15, 16, 17};
    for (std::uint64_t i = 0; i < 8; i++) {
        std::uint64_t out = 0;
        ASSERT_TRUE(vec.get(ctx, 0, i, out));
        EXPECT_EQ(out, expect[i]) << "element " << i;
    }
    std::string why;
    EXPECT_TRUE(vec.check(ctx, &why)) << why;
}

TEST(ModVector, ExactlyOneOrderingFencePerUpdate)
{
    core::Runtime rt(kPool, 1);
    pm::PmContext &ctx = rt.ctx(0);
    mod::ModHeap heap(ctx, kHeapBase, kPool - kHeapBase, 1);
    mod::ModVector vec(ctx, heap, 0, 8);

    rt.clearTraces();
    constexpr std::uint64_t kUpdates = 10;
    for (std::uint64_t i = 0; i < kUpdates; i++) {
        std::uint64_t vals[4] = {i, i + 1, i + 2, i + 3};
        ASSERT_TRUE(vec.write(ctx, 0, i % 8, 0, vals, 4, 8));
    }
    // The MOD discipline, verified at the trace level: an update
    // issues its single ofence and nothing else fences (allocation,
    // retire and the commit swap all ride it).
    EXPECT_EQ(rt.traces().totalCounters().fences, kUpdates);
}

TEST(ModHashmap, PutLookupRemoveRoundTrip)
{
    core::Runtime rt(kPool, 1);
    pm::PmContext &ctx = rt.ctx(0);
    mod::ModHeap heap(ctx, kHeapBase, kPool - kHeapBase, 1);
    mod::ModHashmap map(ctx, heap, 0, 64, 1);

    std::uint64_t vals[3] = {1, 2, 3};
    bool inserted = false;
    ASSERT_TRUE(map.put(ctx, 0, 42, vals, inserted));
    EXPECT_TRUE(inserted);
    vals[0] = 9;
    ASSERT_TRUE(map.put(ctx, 0, 42, vals, inserted));
    EXPECT_FALSE(inserted) << "second put is an update";

    std::uint64_t out[3] = {};
    ASSERT_TRUE(map.lookup(ctx, 42, out));
    EXPECT_EQ(out[0], 9u);
    EXPECT_EQ(out[2], 3u);
    EXPECT_EQ(map.countReachable(ctx), 1u);

    EXPECT_TRUE(map.remove(ctx, 0, 42));
    EXPECT_FALSE(map.lookup(ctx, 42, out));
    EXPECT_FALSE(map.remove(ctx, 0, 42));
    std::string why;
    EXPECT_TRUE(map.check(ctx, &why)) << why;
}

TEST(ModHeap, RecoveryRebuildsOccupancyFromReachability)
{
    core::Runtime rt(kPool, 1);
    pm::PmContext &ctx = rt.ctx(0);
    mod::ModHeap heap(ctx, kHeapBase, kPool - kHeapBase, 1);
    mod::ModVector vec(ctx, heap, 0, 4);

    std::uint64_t vals[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    ASSERT_TRUE(vec.write(ctx, 0, 0, 0, vals, 8, 8));
    ASSERT_TRUE(vec.write(ctx, 0, 0, 0, vals, 8, 8));
    // The superseded chunk is retired but not yet reclaimed: two
    // blocks live, one reachable.
    EXPECT_EQ(heap.allocStats().bytesLive, 256u);
    std::vector<Addr> live;
    vec.reachable(ctx, live);
    ASSERT_EQ(live.size(), 1u);

    // Re-mount and mark-sweep: occupancy becomes exactly the
    // reachable set and the garbage lanes come back cleared.
    mod::ModHeap recovered(kHeapBase, kPool - kHeapBase, 1);
    mod::ModVector revec(recovered, 0, 4);
    std::vector<Addr> marked;
    revec.reachable(ctx, marked);
    recovered.recover(ctx, marked);
    EXPECT_EQ(recovered.allocStats().bytesLive, 128u);
    EXPECT_TRUE(recovered.isLiveNode(marked[0]));
    std::string why;
    EXPECT_TRUE(recovered.gcQuiescent(ctx, &why)) << why;
    EXPECT_TRUE(revec.check(ctx, &why)) << why;
    EXPECT_TRUE(recovered.magicIntact(ctx));
}

TEST(ModHeap, GraceDefersReclaimUntilPeersQuiesce)
{
    core::Runtime rt(kPool, 2);
    pm::PmContext &ctx = rt.ctx(0);
    mod::ModHeap heap(ctx, kHeapBase, kPool - kHeapBase, 2);

    const Addr a = heap.alloc(ctx, 64);
    ASSERT_NE(a, kNullAddr);
    heap.retire(ctx, 0, a);
    heap.durabilityPoint(ctx, 0);
    // The superseding swap is durable, but thread 1 may still be
    // reading the old node: the batch stays unreclaimed until thread 1
    // passes a quiescent point after the retirement was batched.
    EXPECT_EQ(heap.gcStats().reclaimed, 0u);
    EXPECT_TRUE(heap.isLiveNode(a)) << "grace must defer reclaim";

    heap.readerQuiesce(1);
    heap.durabilityPoint(ctx, 0);
    EXPECT_EQ(heap.gcStats().reclaimed, 1u);
    EXPECT_FALSE(heap.isLiveNode(a));
}

// ------------------------------------------------------- concurrency

TEST(ModConcurrency, DisjointKeyWritersScaleAcrossStripes)
{
    // The tentpole claim at structure level: four writers on disjoint
    // key partitions never share a stripe, every commit CAS succeeds,
    // and the final structure carries all four threads' updates.
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 160;
    core::Runtime rt(kPool, kThreads);
    mod::ModHeap heap(rt.ctx(0), kHeapBase, kPool - kHeapBase,
                      kThreads);
    mod::ModHashmap map(rt.ctx(0), heap, 0, 64 * kThreads, kThreads);

    rt.runThreads(kThreads, [&](pm::PmContext &ctx, ThreadId tid) {
        for (std::uint64_t i = 0; i < kPerThread; i++) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(tid) << 48) | (i % 64);
            const std::uint64_t vals[3] = {tid, i, tid ^ i};
            bool inserted = false;
            ASSERT_TRUE(map.put(ctx, tid, key, vals, inserted));
            std::uint64_t out[3] = {};
            ASSERT_TRUE(map.lookup(ctx, key, out));
            EXPECT_EQ(out[0], tid);
            EXPECT_EQ(out[1], i);
        }
        heap.threadExit(ctx, tid);
    });

    pm::PmContext &ctx = rt.ctx(0);
    EXPECT_EQ(map.countReachable(ctx), kThreads * 64u);
    std::string why;
    EXPECT_TRUE(map.check(ctx, &why)) << why;
    EXPECT_GT(heap.gcStats().retired, 0u) << "updates must retire";
    EXPECT_GT(heap.gcStats().reclaimed, 0u) << "grace must elapse";
}

TEST(ModConcurrency, CollidingWritersSerializeOnTheStripe)
{
    // The adversarial case: every thread hammers the same 16 keys, so
    // updates contend the same buckets and stripes. The stripe lock is
    // taken before the head is read, so the commit CAS must always
    // succeed (a lost CAS panics) and chains stay intact.
    constexpr unsigned kThreads = 4;
    core::Runtime rt(kPool, kThreads);
    mod::ModHeap heap(rt.ctx(0), kHeapBase, kPool - kHeapBase,
                      kThreads);
    mod::ModHashmap map(rt.ctx(0), heap, 0, 64, 1);

    rt.runThreads(kThreads, [&](pm::PmContext &ctx, ThreadId tid) {
        for (std::uint64_t i = 0; i < 120; i++) {
            const std::uint64_t key = i % 16;
            const std::uint64_t vals[3] = {tid, i, key};
            bool inserted = false;
            ASSERT_TRUE(map.put(ctx, tid, key, vals, inserted));
            if (i % 7 == tid)
                map.remove(ctx, tid, key);
        }
        heap.threadExit(ctx, tid);
    });

    pm::PmContext &ctx = rt.ctx(0);
    std::string why;
    EXPECT_TRUE(map.check(ctx, &why)) << why;
    EXPECT_GT(heap.gcStats().retired, 0u);
    // Whichever writer won each key, its value is whole: no torn or
    // mixed payloads survive the race.
    for (std::uint64_t key = 0; key < 16; key++) {
        std::uint64_t out[3] = {};
        if (map.lookup(ctx, key, out)) {
            EXPECT_LT(out[0], kThreads) << "key " << key;
            EXPECT_EQ(out[2], key);
        }
    }
}

TEST(ModConcurrency, VectorWritersRaceDisjointAndSharedStripes)
{
    // Range stripes on the spine: each thread mostly writes its own
    // kSlotsPerStripe-aligned region (own stripe, no contention) and
    // every ninth update hits the shared first stripe.
    constexpr unsigned kThreads = 4;
    core::Runtime rt(kPool, kThreads);
    mod::ModHeap heap(rt.ctx(0), kHeapBase, kPool - kHeapBase,
                      kThreads);
    mod::ModVector vec(rt.ctx(0), heap, 0,
                       kThreads * mod::ModVector::kSlotsPerStripe);

    rt.runThreads(kThreads, [&](pm::PmContext &ctx, ThreadId tid) {
        const std::uint64_t base =
            tid * mod::ModVector::kSlotsPerStripe;
        for (std::uint64_t i = 0; i < 200; i++) {
            const std::uint64_t slot =
                i % 9 == 0 ? i % 8 : base + i % 32;
            const std::uint64_t vals[4] = {tid, i, slot, tid + i};
            ASSERT_TRUE(vec.write(ctx, tid, slot, 0, vals, 4, 4));
        }
        heap.threadExit(ctx, tid);
    });

    pm::PmContext &ctx = rt.ctx(0);
    std::string why;
    EXPECT_TRUE(vec.check(ctx, &why)) << why;
    // Every written slot holds a whole chunk from exactly one of the
    // racing writes (vals[2] always names the slot).
    for (unsigned t = 0; t < kThreads; t++) {
        const std::uint64_t slot =
            t * mod::ModVector::kSlotsPerStripe + 9;
        EXPECT_EQ(vec.chunkCount(ctx, slot), 4u);
        std::uint64_t out = 0;
        ASSERT_TRUE(vec.get(ctx, slot, 2, out));
        EXPECT_EQ(out, slot);
    }
    EXPECT_GT(heap.gcStats().reclaimed, 0u);
}

TEST(ModConcurrency, LockFreeReadersSurviveConcurrentUpdates)
{
    // Two writers churn their partitions while two lock-free readers
    // chase chains, quiescing periodically so grace periods elapse.
    // A reader must only ever observe whole entries from one put.
    constexpr unsigned kThreads = 4;
    core::Runtime rt(kPool, kThreads);
    mod::ModHeap heap(rt.ctx(0), kHeapBase, kPool - kHeapBase,
                      kThreads);
    mod::ModHashmap map(rt.ctx(0), heap, 0, 64, 2);

    rt.runThreads(kThreads, [&](pm::PmContext &ctx, ThreadId tid) {
        if (tid < 2) {
            for (std::uint64_t i = 0; i < 240; i++) {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(tid) << 48) |
                    (i % 24);
                const std::uint64_t vals[3] = {tid, i, tid ^ i};
                bool inserted = false;
                ASSERT_TRUE(map.put(ctx, tid, key, vals, inserted));
                if (i % 5 == 0)
                    map.remove(ctx, tid, key);
            }
        } else {
            const std::uint64_t writer = tid - 2;
            for (std::uint64_t i = 0; i < 400; i++) {
                const std::uint64_t key = (writer << 48) | (i % 24);
                std::uint64_t out[3] = {};
                if (map.lookup(ctx, key, out)) {
                    EXPECT_EQ(out[0], writer)
                        << "reader saw a torn entry";
                }
                if (i % 16 == 0)
                    heap.readerQuiesce(tid);
            }
        }
        heap.threadExit(ctx, tid);
    });

    pm::PmContext &ctx = rt.ctx(0);
    std::string why;
    EXPECT_TRUE(map.check(ctx, &why)) << why;
}

// ------------------------------------------------- golden regressions

TEST(ModGolden, AmplificationBandsAndOrdering)
{
    // §5.2 golden ranges at test scale: Mnemosyne (vacation) lands in
    // its 3-6x band, NVML (hashmap) near 10x, and both MOD structures
    // sit strictly below both logging libraries.
    const AppConfig config = appConfig();
    const double mnemosyne = analysis::computeAmplification(
        core::runApp("vacation", config).runtime->traces()).ratio();
    const double nvml = analysis::computeAmplification(
        core::runApp("hashmap", config).runtime->traces()).ratio();
    const double mod_map = analysis::computeAmplification(
        core::runApp("mod-hashmap", config).runtime->traces()).ratio();
    const double mod_vec = analysis::computeAmplification(
        core::runApp("mod-vector", config).runtime->traces()).ratio();

    EXPECT_GE(mnemosyne, 2.5);
    EXPECT_LE(mnemosyne, 6.5);
    EXPECT_GE(nvml, 4.0);
    EXPECT_LE(nvml, 14.0);
    for (const double mod : {mod_map, mod_vec}) {
        EXPECT_LT(mod, mnemosyne);
        EXPECT_LT(mod, nvml);
        EXPECT_LT(mod, 2.5) << "MOD must stay below the Mnemosyne band";
        EXPECT_GT(mod, 0.0);
    }
}

TEST(ModGolden, EpochsPerTxPinnedAtOne)
{
    const AppConfig config = appConfig();
    const RunResult mod = core::runApp("mod-hashmap", config);
    const RunResult nvml = core::runApp("hashmap", config);

    analysis::EpochBuilder mod_b(mod.runtime->traces());
    const auto mod_sum =
        analysis::summarizeEpochs(mod_b, mod.runtime->traces());
    analysis::EpochBuilder nvml_b(nvml.runtime->traces());
    const auto nvml_sum =
        analysis::summarizeEpochs(nvml_b, nvml.runtime->traces());

    EXPECT_LE(mod_sum.epochsPerTx.median(), 2u);
    EXPECT_LT(mod_sum.epochsPerTx.median(),
              nvml_sum.epochsPerTx.median())
        << "a MOD update must take fewer ordering points than an "
           "NVML-logged one";
}

TEST(ModGolden, SimulatorSeesFewerFenceStalls)
{
    // Ordering-point reduction must show up in the timing models:
    // same workload shape, far fewer fences to stall on.
    AppConfig config = appConfig();
    config.opsPerThread = 60;
    config.recordVolatile = true;
    const RunResult mod = core::runApp("mod-hashmap", config);
    const RunResult nvml = core::runApp("hashmap", config);

    sim::Simulator x86(sim::SimParams{}, sim::ModelKind::X86Nvm);
    const auto r_mod = x86.run(mod.runtime->traces());
    sim::Simulator x86_nvml(sim::SimParams{}, sim::ModelKind::X86Nvm);
    const auto r_nvml = x86_nvml.run(nvml.runtime->traces());

    EXPECT_LT(r_mod.persist.fenceStalls, r_nvml.persist.fenceStalls);
}

} // namespace
} // namespace whisper

/**
 * @file
 * Differential tests: each persistent structure is driven through a
 * long random operation sequence next to a plain in-memory reference
 * model; states must agree after every step, after a crash, and after
 * re-mount. Parameterized over seeds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/logical_clock.hh"
#include "pmfs/pmfs.hh"
#include "txlib/nvml.hh"

namespace whisper
{
namespace
{

// ------------------------------------ block-map B-tree vs std::map

class BtreeDifferential : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BtreeDifferential, MatchesReferenceMap)
{
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    pm::PmContext ctx(pool, clock, 0, nullptr);

    // A standalone bump allocator for tree nodes (zeroed blocks) so
    // the test exercises the tree in isolation.
    struct BumpAlloc : pmfs::BtNodeAllocator
    {
        Addr next = 4 << 20;
        Addr
        allocNode(pm::PmContext &c) override
        {
            const Addr node = next;
            next += pmfs::kBlockSize;
            static const std::uint8_t zeros[pmfs::kBlockSize] = {};
            c.ntStore(node, zeros, sizeof(zeros));
            return node;
        }
        void freeNode(pm::PmContext &, Addr) override {}
    } nodes;

    pmfs::MetaJournal journal(ctx, 0);
    pmfs::BlockTree tree(journal, nodes);
    pmfs::BtRoot root;

    Rng rng(GetParam());
    std::map<std::uint64_t, Addr> reference;
    const std::uint64_t key_space = 2000;

    for (int op = 0; op < 1500; op++) {
        const std::uint64_t key = rng.next(key_space);
        if (rng.chance(0.7)) {
            const Addr val = 0x1000 + key * 64;
            journal.begin(ctx);
            root = tree.insert(ctx, root, key, val);
            journal.commit(ctx);
            reference[key] = val;
        } else {
            const Addr got = tree.lookup(ctx, root, key);
            auto it = reference.find(key);
            if (it == reference.end())
                ASSERT_EQ(got, kNullAddr) << "key " << key;
            else
                ASSERT_EQ(got, it->second) << "key " << key;
        }
    }
    // Full-order comparison at the end.
    std::vector<std::pair<std::uint64_t, Addr>> walked;
    tree.forEach(ctx, root, [&](std::uint64_t k, Addr v) {
        walked.emplace_back(k, v);
    });
    ASSERT_EQ(walked.size(), reference.size());
    EXPECT_TRUE(std::is_sorted(walked.begin(), walked.end()));
    auto it = reference.begin();
    for (const auto &[k, v] : walked) {
        EXPECT_EQ(k, it->first);
        EXPECT_EQ(v, it->second);
        ++it;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BtreeDifferential,
                         ::testing::Values(3, 17, 99, 1234));

// --------------------------------------- PMFS file vs byte vector

class FileDifferential : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FileDifferential, ContentMatchesReferenceThroughCrash)
{
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    pm::PmContext ctx(pool, clock, 0, nullptr);
    pmfs::Pmfs fs(ctx, 0, 48 << 20);
    const pmfs::Ino ino = fs.create(ctx, "/diff");
    ASSERT_NE(ino, pmfs::kInvalidIno);

    Rng rng(GetParam());
    std::vector<std::uint8_t> reference;
    std::vector<std::uint8_t> chunk(3 * pmfs::kBlockSize);

    for (int op = 0; op < 60; op++) {
        const double pick = rng.nextDouble();
        if (pick < 0.45) {
            // Random write at a random offset within |size| + slack.
            const std::uint64_t off =
                rng.next(reference.size() + pmfs::kBlockSize);
            const std::size_t n = 1 + rng.next(chunk.size() - 1);
            for (std::size_t i = 0; i < n; i++)
                chunk[i] = static_cast<std::uint8_t>(rng());
            ASSERT_EQ(fs.write(ctx, ino, off, chunk.data(), n),
                      static_cast<long>(n));
            if (reference.size() < off + n)
                reference.resize(off + n, 0);
            std::copy(chunk.begin(), chunk.begin() + n,
                      reference.begin() + off);
        } else if (pick < 0.75) {
            const std::size_t n = 1 + rng.next(6000);
            for (std::size_t i = 0; i < n; i++)
                chunk[i] = static_cast<std::uint8_t>(rng());
            ASSERT_EQ(fs.append(ctx, ino, chunk.data(), n),
                      static_cast<long>(n));
            reference.insert(reference.end(), chunk.begin(),
                             chunk.begin() + n);
        } else if (pick < 0.85 && !reference.empty()) {
            const std::uint64_t new_size =
                rng.next(reference.size());
            ASSERT_TRUE(fs.truncate(ctx, ino, new_size));
            reference.resize(new_size);
        } else {
            // Spot check a random range.
            if (reference.empty())
                continue;
            const std::uint64_t off = rng.next(reference.size());
            const std::size_t n = std::min<std::size_t>(
                1 + rng.next(4000), reference.size() - off);
            std::vector<std::uint8_t> out(n);
            ASSERT_EQ(fs.read(ctx, ino, off, out.data(), n),
                      static_cast<long>(n));
            ASSERT_TRUE(std::equal(out.begin(), out.end(),
                                   reference.begin() + off));
        }
        ASSERT_EQ(fs.fileSize(ctx, ino), reference.size());
    }

    // Crash + remount: everything was synchronous, so the whole file
    // must match byte for byte.
    pool.crashHard();
    ctx.resetPendingState();
    pmfs::Pmfs fs2(0, 48 << 20);
    fs2.mount(ctx);
    std::string why;
    ASSERT_TRUE(fs2.fsck(ctx, &why)) << why;
    const pmfs::Ino found = fs2.lookup(ctx, "/diff");
    ASSERT_EQ(fs2.fileSize(ctx, found), reference.size());
    std::vector<std::uint8_t> all(reference.size());
    if (!all.empty()) {
        ASSERT_EQ(fs2.read(ctx, found, 0, all.data(), all.size()),
                  static_cast<long>(all.size()));
    }
    EXPECT_EQ(all, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FileDifferential,
                         ::testing::Values(7, 21, 555));

// -------------------------------- NVML map vs std::map with crashes

class KvDifferential : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(KvDifferential, CommittedStateMatchesReference)
{
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    pm::PmContext ctx(pool, clock, 0, nullptr);

    struct Node
    {
        std::uint64_t key;
        std::uint64_t value;
        Addr next;
    };
    constexpr std::uint64_t kBuckets = 64;
    struct Root
    {
        Addr buckets[kBuckets];
    };

    const Addr pool_base = lineBase(sizeof(Root) + kCacheLineSize);
    nvml::NvmlPool npool(ctx, pool_base, (48 << 20) - pool_base, 1);
    Root init{};
    for (auto &b : init.buckets)
        b = kNullAddr;
    ctx.store(0, &init, sizeof(init));
    ctx.persist(0, sizeof(init));
    auto *root = pool.at<Root>(0);

    auto find = [&](std::uint64_t key) -> Addr {
        for (Addr cur = root->buckets[key % kBuckets];
             cur != kNullAddr;) {
            Node *n = pool.at<Node>(cur);
            if (n->key == key)
                return cur;
            cur = n->next;
        }
        return kNullAddr;
    };

    Rng rng(GetParam());
    std::map<std::uint64_t, std::uint64_t> reference;

    for (int round = 0; round < 5; round++) {
        for (int op = 0; op < 150; op++) {
            const std::uint64_t key = rng.next(400);
            const std::uint64_t value = rng();
            const Addr existing = find(key);
            nvml::TxContext tx(npool, ctx);
            if (existing != kNullAddr) {
                tx.set(pool.at<Node>(existing)->value, value);
            } else {
                const Addr off = tx.txAlloc(sizeof(Node));
                ASSERT_NE(off, kNullAddr);
                Addr &bucket = root->buckets[key % kBuckets];
                Node fresh{key, value, bucket};
                tx.directStore(off, &fresh, sizeof(fresh));
                tx.set(bucket, off);
            }
            tx.commit();
            reference[key] = value;
        }
        // Crash with random survival between rounds; committed state
        // is durable, so the reference must match exactly.
        pool.crash(rng, rng.nextDouble());
        ctx.resetPendingState();
        nvml::NvmlPool again(pool_base, (48 << 20) - pool_base, 1);
        again.recover(ctx);
        root = pool.at<Root>(0);

        std::map<std::uint64_t, std::uint64_t> walked;
        for (std::uint64_t b = 0; b < kBuckets; b++) {
            for (Addr cur = root->buckets[b]; cur != kNullAddr;) {
                const Node *n = pool.at<Node>(cur);
                walked[n->key] = n->value;
                cur = n->next;
            }
        }
        ASSERT_EQ(walked, reference) << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvDifferential,
                         ::testing::Values(2, 13, 77));

} // namespace
} // namespace whisper

/**
 * @file
 * PM device model tests: DIMM mapping purity, write-combining buffer
 * hit/evict cost goldens, balanced-vs-skewed drain behaviour, the
 * legacy uniform drain formula, and the preset-equivalence golden
 * pinning SimParams{} == paperTable3() to the exact pre-device-model
 * cycle counts.
 */

#include <gtest/gtest.h>

#include "sim/pm_device.hh"
#include "sim/simulator.hh"

namespace whisper::sim
{
namespace
{

using trace::DataClass;
using trace::EventKind;
using trace::FenceKind;
using trace::TraceEvent;
using trace::TraceSet;

PmDeviceParams
singleDimm()
{
    PmDeviceParams p = PmDeviceParams::optaneCalibrated();
    p.dimmMap = DimmConfig{1, kInternalBlockLines};
    return p;
}

// ------------------------------------------------------------- mapping

TEST(PmDevice, DimmMappingPure)
{
    const DimmConfig map{6, 4};
    PmDeviceParams params = PmDeviceParams::optaneCalibrated();
    params.dimmMap = map;
    PmDeviceModel model(params, false);
    for (LineAddr line = 0; line < 4096; line++) {
        const unsigned expect = (line / 4) % 6;
        EXPECT_EQ(model.dimmOf(line), expect);
        // Pure: unaffected by traffic on the model.
        model.persistCost(line);
        EXPECT_EQ(model.dimmOf(line), expect);
    }
}

TEST(PmDevice, DimmCountClampsToMax)
{
    DimmConfig map{64, 1};
    EXPECT_EQ(map.dimms(), kMaxDimms);
    for (LineAddr line = 0; line < 256; line++)
        EXPECT_LT(map.dimmOf(line), kMaxDimms);
    // A zero count degrades to one DIMM rather than dividing by zero.
    DimmConfig zero{0, 4};
    EXPECT_EQ(zero.dimms(), 1u);
    EXPECT_EQ(zero.dimmOf(123), 0u);
}

// ------------------------------------------------- WC buffer goldens

TEST(PmDevice, WcBufferHitCostGolden)
{
    PmDeviceModel model(singleDimm(), false);
    const PmDeviceParams &p = model.params();

    // First write: empty backlog, pays only the durability ack.
    EXPECT_EQ(model.persistCost(0), p.writeAcceptLat);
    EXPECT_EQ(model.stats().wcHits, 0u);

    // Same internal block: WC hit — no media work, but the access
    // consumes the DIMM's trailing service gap.
    EXPECT_EQ(model.persistCost(1), p.writeAcceptLat + p.dimmWriteGap);
    EXPECT_EQ(model.stats().wcHits, 1u);
    EXPECT_EQ(model.stats().wcEvicts, 0u);
}

TEST(PmDevice, WcBufferEvictCostGolden)
{
    PmDeviceModel model(singleDimm(), false);
    const PmDeviceParams &p = model.params();

    // Fill the buffer: wcBufferBlocks distinct internal blocks, then
    // one more to force a capacity eviction (a full 256 B media
    // program on the backlog).
    for (std::uint64_t b = 0; b <= p.wcBufferBlocks; b++)
        model.persistCost(b * kInternalBlockLines);
    EXPECT_EQ(model.stats().wcEvicts, 1u);

    // The next access pays the eviction plus the trailing gap.
    EXPECT_EQ(model.persistCost((p.wcBufferBlocks + 1) *
                                kInternalBlockLines),
              p.writeAcceptLat + p.wcEvictLat + p.dimmWriteGap);
}

TEST(PmDevice, ReadCostsAndReadBufferHit)
{
    PmDeviceModel model(singleDimm(), false);
    const PmDeviceParams &p = model.params();

    // Cold read: full media latency.
    EXPECT_EQ(model.readCost(100), p.readLat);
    // Next read pays the read service gap behind it.
    EXPECT_EQ(model.readCost(200), p.readLat + p.dimmReadGap);

    // A write leaves its block in the WC buffer; a read of the same
    // block is served from the buffer.
    model.persistCost(0);
    EXPECT_EQ(model.readCost(1), p.readBufHitLat + p.dimmWriteGap);
    EXPECT_EQ(model.stats().readBufHits, 1u);
}

// ------------------------------------------------------------- drains

TEST(PmDevice, BalancedDrainBeatsSkewed)
{
    PmDeviceParams params = PmDeviceParams::optaneCalibrated();
    params.dimmMap = DimmConfig{4, 1};
    const PmDeviceParams &p = params;

    // Four lines on four DIMMs: fully parallel burst.
    PmDeviceModel balanced(params, false);
    EXPECT_EQ(balanced.drainLines({0, 1, 2, 3}), p.writeAcceptLat);

    // Four lines on one DIMM: serialized at the write gap.
    PmDeviceModel skewed(params, false);
    EXPECT_EQ(skewed.drainLines({0, 4, 8, 12}),
              p.writeAcceptLat + 3 * p.dimmWriteGap);
}

TEST(PmDevice, UniformDrainMatchesLegacyFormula)
{
    const PmDeviceParams p; // uniform Table 3 machine
    const std::vector<LineAddr> lines{0, 1, 2, 3, 4, 5, 6, 7};
    const std::uint64_t gap = p.mcServiceGap / p.memControllers;

    PmDeviceModel nvm(p, false);
    EXPECT_EQ(nvm.drainLines(lines),
              p.pmLat + (lines.size() - 1) * gap);
    PmDeviceModel pwq(p, true);
    EXPECT_EQ(pwq.drainLines(lines),
              p.mcQueueLat + (lines.size() - 1) * gap);
    // Uniform reads ignore DIMM state entirely.
    EXPECT_EQ(nvm.readCost(999), p.pmLat);
}

// ------------------------------------------- preset equivalence golden

TraceEvent
ev(Tick ts, EventKind kind, Addr addr = 0, std::uint32_t size = 8,
   std::uint8_t aux = 0)
{
    return TraceEvent{ts, addr, size, kind, DataClass::User, aux, 0};
}

/** Two threads, 60 txs of 5 one-line epochs, 40 DRAM loads per tx. */
TraceSet
goldenTrace()
{
    TraceSet set(true);
    for (unsigned t = 0; t < 2; t++) {
        auto *b = set.createBuffer(t);
        Tick ts = 1;
        Addr addr = t * (1 << 20);
        for (unsigned i = 0; i < 60; i++) {
            b->push(ev(ts++, EventKind::TxBegin, i));
            for (unsigned e = 0; e < 5; e++) {
                b->push(ev(ts++, EventKind::PmStore, addr));
                b->push(ev(ts++, EventKind::PmFlush, addr));
                addr += 64;
                const bool last = e + 1 == 5;
                b->push(ev(ts++, EventKind::Fence, 0, 0,
                           static_cast<std::uint8_t>(
                               last ? FenceKind::Durability
                                    : FenceKind::Ordering)));
            }
            for (int d = 0; d < 40; d++)
                b->push(ev(ts++, EventKind::DramLoad, 4096 + d * 64));
            b->push(ev(ts++, EventKind::TxEnd, i));
        }
    }
    return set;
}

TEST(PmDevice, PaperTable3PresetKeepsGoldenCycles)
{
    const TraceSet traces = goldenTrace();
    const std::vector<ModelKind> kinds = {
        ModelKind::X86Nvm,  ModelKind::X86Pwq, ModelKind::HopsNvm,
        ModelKind::HopsPwq, ModelKind::Dpo,    ModelKind::Ideal};
    // Captured from the pre-device-model simulator: the default
    // SimParams must reproduce these exactly.
    const std::uint64_t golden[] = {108420, 84420, 69120,
                                    64320,  69600, 59520};

    const SimParams defaults;
    SimParams explicit_preset;
    explicit_preset.device = PmDeviceParams::paperTable3();

    for (std::size_t m = 0; m < kinds.size(); m++) {
        Simulator sim_default(defaults, kinds[m]);
        Simulator sim_preset(explicit_preset, kinds[m]);
        const std::uint64_t d = sim_default.run(traces).cycles;
        const std::uint64_t p = sim_preset.run(traces).cycles;
        EXPECT_EQ(d, golden[m]) << modelKindName(kinds[m]);
        EXPECT_EQ(p, golden[m]) << modelKindName(kinds[m]);
    }
}

TEST(PmDevice, CalibratedRunDeterministicAndCounted)
{
    const TraceSet traces = goldenTrace();
    SimParams params;
    params.device = PmDeviceParams::optaneCalibrated();
    Simulator a(params, ModelKind::X86Nvm);
    Simulator b(params, ModelKind::X86Nvm);
    const SimResult ra = a.run(traces);
    const SimResult rb = b.run(traces);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.device.writes, rb.device.writes);
    EXPECT_GT(ra.device.writes, 0u);
    // Per-DIMM counters partition the total write traffic.
    std::uint64_t sum = 0;
    for (const std::uint64_t w : ra.device.dimmWrites)
        sum += w;
    EXPECT_EQ(sum, ra.device.writes);
}

} // namespace
} // namespace whisper::sim

/**
 * @file
 * Tests for the features that extend the paper: PMFS rename/truncate,
 * the Mnemosyne garbage collector (Consequence 8), the DPO comparison
 * model, PB epoch coalescing, and the trace-file round trip through
 * the full analysis + simulation pipeline.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "analysis/epoch_stats.hh"
#include "common/logical_clock.hh"
#include "core/harness.hh"
#include "pmfs/pmfs.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"
#include "txlib/gc.hh"

namespace whisper
{
namespace
{

struct FsWorld
{
    pm::PmPool pool{64 << 20};
    LogicalClock clock;
    trace::TraceBuffer tb{0};
    pm::PmContext ctx{pool, clock, 0, &tb};
};

// ------------------------------------------------------- pmfs: rename

TEST(PmfsRename, MovesFileAcrossDirectories)
{
    FsWorld w;
    pmfs::Pmfs fs(w.ctx, 0, 32 << 20);
    fs.mkdir(w.ctx, "/a");
    fs.mkdir(w.ctx, "/b");
    const pmfs::Ino ino = fs.create(w.ctx, "/a/f");
    const char data[] = "payload";
    fs.write(w.ctx, ino, 0, data, sizeof(data));

    ASSERT_TRUE(fs.rename(w.ctx, "/a/f", "/b/g"));
    EXPECT_EQ(fs.lookup(w.ctx, "/a/f"), pmfs::kInvalidIno);
    EXPECT_EQ(fs.lookup(w.ctx, "/b/g"), ino);
    char out[sizeof(data)] = {};
    fs.read(w.ctx, ino, 0, out, sizeof(out));
    EXPECT_STREQ(out, "payload");
    std::string why;
    EXPECT_TRUE(fs.fsck(w.ctx, &why)) << why;
}

TEST(PmfsRename, RefusesExistingDestination)
{
    FsWorld w;
    pmfs::Pmfs fs(w.ctx, 0, 32 << 20);
    fs.create(w.ctx, "/x");
    fs.create(w.ctx, "/y");
    EXPECT_FALSE(fs.rename(w.ctx, "/x", "/y"));
    EXPECT_NE(fs.lookup(w.ctx, "/x"), pmfs::kInvalidIno);
}

TEST(PmfsRename, RefusesMoveIntoOwnSubtree)
{
    FsWorld w;
    pmfs::Pmfs fs(w.ctx, 0, 32 << 20);
    fs.mkdir(w.ctx, "/d");
    fs.mkdir(w.ctx, "/d/e");
    EXPECT_FALSE(fs.rename(w.ctx, "/d", "/d/e/d2"));
    std::string why;
    EXPECT_TRUE(fs.fsck(w.ctx, &why)) << why;
}

TEST(PmfsRename, MovesDirectoriesWithContents)
{
    FsWorld w;
    pmfs::Pmfs fs(w.ctx, 0, 32 << 20);
    fs.mkdir(w.ctx, "/src");
    fs.create(w.ctx, "/src/inner");
    fs.mkdir(w.ctx, "/dst");
    ASSERT_TRUE(fs.rename(w.ctx, "/src", "/dst/moved"));
    EXPECT_NE(fs.lookup(w.ctx, "/dst/moved/inner"),
              pmfs::kInvalidIno);
    std::string why;
    EXPECT_TRUE(fs.fsck(w.ctx, &why)) << why;
}

// ----------------------------------------------------- pmfs: truncate

TEST(PmfsTruncate, ShrinksAndFreesBlocks)
{
    FsWorld w;
    pmfs::Pmfs fs(w.ctx, 0, 32 << 20);
    const pmfs::Ino ino = fs.create(w.ctx, "/fat");
    std::vector<std::uint8_t> buf(20 * pmfs::kBlockSize, 0x7E);
    fs.write(w.ctx, ino, 0, buf.data(), buf.size());
    const std::uint64_t free_small = fs.freeBlockCount();

    ASSERT_TRUE(fs.truncate(w.ctx, ino, 3 * pmfs::kBlockSize + 100));
    EXPECT_EQ(fs.fileSize(w.ctx, ino), 3 * pmfs::kBlockSize + 100);
    EXPECT_GT(fs.freeBlockCount(), free_small + 10);

    // Remaining data intact.
    std::uint8_t b = 0;
    fs.read(w.ctx, ino, 2 * pmfs::kBlockSize, &b, 1);
    EXPECT_EQ(b, 0x7E);
    std::string why;
    EXPECT_TRUE(fs.fsck(w.ctx, &why)) << why;
}

TEST(PmfsTruncate, ToZeroLeavesEmptyFile)
{
    FsWorld w;
    pmfs::Pmfs fs(w.ctx, 0, 32 << 20);
    const pmfs::Ino ino = fs.create(w.ctx, "/f");
    std::vector<std::uint8_t> buf(5000, 1);
    fs.write(w.ctx, ino, 0, buf.data(), buf.size());
    ASSERT_TRUE(fs.truncate(w.ctx, ino, 0));
    EXPECT_EQ(fs.fileSize(w.ctx, ino), 0u);
    std::string why;
    EXPECT_TRUE(fs.fsck(w.ctx, &why)) << why;
    // The file can grow again afterwards.
    EXPECT_EQ(fs.write(w.ctx, ino, 0, buf.data(), 100), 100);
}

TEST(PmfsTruncate, RejectsGrowth)
{
    FsWorld w;
    pmfs::Pmfs fs(w.ctx, 0, 32 << 20);
    const pmfs::Ino ino = fs.create(w.ctx, "/f");
    EXPECT_FALSE(fs.truncate(w.ctx, ino, 4096));
}

TEST(PmfsTruncate, SurvivesCrashAfterwards)
{
    FsWorld w;
    pmfs::Pmfs fs(w.ctx, 0, 32 << 20);
    const pmfs::Ino ino = fs.create(w.ctx, "/f");
    std::vector<std::uint8_t> buf(10 * pmfs::kBlockSize, 0x22);
    fs.write(w.ctx, ino, 0, buf.data(), buf.size());
    fs.truncate(w.ctx, ino, pmfs::kBlockSize);

    w.pool.crashHard();
    w.ctx.resetPendingState();
    pmfs::Pmfs fs2(0, 32 << 20);
    fs2.mount(w.ctx);
    std::string why;
    EXPECT_TRUE(fs2.fsck(w.ctx, &why)) << why;
    EXPECT_EQ(fs2.fileSize(w.ctx, fs2.lookup(w.ctx, "/f")),
              pmfs::kBlockSize);
}

// ------------------------------------------- garbage collection (GC)

struct GcNode
{
    std::uint64_t value;
    Addr next;
};

TEST(Gc, FreesLeakedKeepsReachable)
{
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    trace::TraceBuffer tb(0);
    pm::PmContext ctx(pool, clock, 0, &tb);
    mne::MnemosyneHeap heap(ctx, 0, 32 << 20, 1);

    // A reachable chain of three nodes...
    Addr head = kNullAddr;
    for (int i = 0; i < 3; i++) {
        const Addr node = heap.pmalloc(ctx, sizeof(GcNode));
        GcNode n{static_cast<std::uint64_t>(i), head};
        ctx.store(node, &n, sizeof(n));
        ctx.persist(node, sizeof(n));
        head = node;
    }
    // ...plus four leaked allocations (bitmap durable, never linked —
    // the Mnemosyne crash-leak scenario).
    std::vector<Addr> leaked;
    for (int i = 0; i < 4; i++)
        leaked.push_back(heap.pmalloc(ctx, 64));

    pool.crashHard();
    ctx.resetPendingState();
    mne::MnemosyneHeap again(0, 32 << 20, 1);
    again.recover(ctx);
    for (const Addr l : leaked)
        EXPECT_TRUE(again.allocator().isAllocated(l));

    const auto stats = mne::collectGarbage(
        again, ctx, {head},
        [](pm::PmContext &c, Addr payload, std::vector<Addr> &out) {
            out.push_back(c.pool().at<GcNode>(payload)->next);
        });
    EXPECT_EQ(stats.reachable, 3u);
    EXPECT_EQ(stats.freed, 4u);
    for (const Addr l : leaked)
        EXPECT_FALSE(again.allocator().isAllocated(l));
    // The chain survives.
    Addr cur = head;
    int seen = 0;
    while (cur != kNullAddr) {
        EXPECT_TRUE(again.allocator().isAllocated(cur));
        cur = ctx.pool().at<GcNode>(cur)->next;
        seen++;
    }
    EXPECT_EQ(seen, 3);
}

TEST(Gc, EmptyRootsFreesEverything)
{
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    pm::PmContext ctx(pool, clock, 0, nullptr);
    mne::MnemosyneHeap heap(ctx, 0, 32 << 20, 1);
    for (int i = 0; i < 5; i++)
        heap.pmalloc(ctx, 64);
    const auto stats = mne::collectGarbage(
        heap, ctx, {},
        [](pm::PmContext &, Addr, std::vector<Addr> &) {});
    EXPECT_EQ(stats.freed, 5u);
    EXPECT_EQ(stats.reachable, 0u);
}

TEST(Gc, StalePointersDoNotResurrect)
{
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    pm::PmContext ctx(pool, clock, 0, nullptr);
    mne::MnemosyneHeap heap(ctx, 0, 32 << 20, 1);
    const Addr a = heap.pmalloc(ctx, sizeof(GcNode));
    const Addr b = heap.pmalloc(ctx, sizeof(GcNode));
    GcNode na{1, b};
    ctx.store(a, &na, sizeof(na));
    heap.pfree(ctx, b); // a now holds a dangling reference
    const auto stats = mne::collectGarbage(
        heap, ctx, {a},
        [](pm::PmContext &c, Addr payload, std::vector<Addr> &out) {
            out.push_back(c.pool().at<GcNode>(payload)->next);
        });
    EXPECT_EQ(stats.reachable, 1u); // b must not come back
}

// ------------------------------------------------ DPO and coalescing

TEST(SimExtensions, DpoCostsAtLeastHops)
{
    trace::TraceSet traces(true);
    auto *b = traces.createBuffer(0);
    Tick ts = 1;
    // Multi-line epochs are where BSP's serialized flushing hurts.
    for (int i = 0; i < 50; i++) {
        for (int l = 0; l < 6; l++) {
            b->push({ts++, static_cast<Addr>((i * 6 + l) * 64), 8,
                     trace::EventKind::PmStore, trace::DataClass::User,
                     0, 0});
        }
        b->push({ts++, 0, 0, trace::EventKind::Fence,
                 trace::DataClass::None,
                 static_cast<std::uint8_t>(
                     trace::FenceKind::Durability),
                 0});
    }
    sim::Simulator hops(sim::SimParams{}, sim::ModelKind::HopsNvm);
    sim::Simulator dpo(sim::SimParams{}, sim::ModelKind::Dpo);
    const auto r_hops = hops.run(traces);
    const auto r_dpo = dpo.run(traces);
    EXPECT_GT(r_dpo.cycles, r_hops.cycles);
}

TEST(SimExtensions, CoalescingReducesWritebacks)
{
    trace::TraceSet traces(true);
    auto *b = traces.createBuffer(0);
    Tick ts = 1;
    // The same line written across consecutive epochs (the suite's
    // self-dependency pattern) — exactly what coalescing collapses.
    for (int i = 0; i < 200; i++) {
        b->push({ts++, static_cast<Addr>((i % 4) * 64), 8,
                 trace::EventKind::PmStore, trace::DataClass::User, 0,
                 0});
        b->push({ts++, 0, 0, trace::EventKind::Fence,
                 trace::DataClass::None,
                 static_cast<std::uint8_t>(
                     trace::FenceKind::Ordering),
                 0});
    }
    b->push({ts++, 0, 0, trace::EventKind::Fence,
             trace::DataClass::None,
             static_cast<std::uint8_t>(trace::FenceKind::Durability),
             0});

    sim::SimParams plain;
    sim::SimParams coalescing;
    coalescing.pbCoalesce = true;
    sim::Simulator a(plain, sim::ModelKind::HopsNvm);
    sim::Simulator c(coalescing, sim::ModelKind::HopsNvm);
    const auto r_plain = a.run(traces);
    const auto r_coal = c.run(traces);
    EXPECT_LT(r_coal.persist.linesDrained,
              r_plain.persist.linesDrained);
    EXPECT_GT(r_coal.persist.epochsCoalesced, 0u);
}

// ------------------------------------- trace file -> full pipeline

TEST(TracePipeline, FileRoundTripMatchesLiveAnalysis)
{
    core::AppConfig config;
    config.threads = 2;
    config.opsPerThread = 40;
    config.poolBytes = 96 << 20;
    config.recordVolatile = true;
    core::RunResult result = core::runApp("hashmap", config);
    ASSERT_TRUE(result.verified);

    const std::string path = "/tmp/whisper_pipeline_test.bin";
    ASSERT_TRUE(trace::writeTraceFile(path,
                                      result.runtime->traces()));
    trace::TraceSet loaded;
    ASSERT_TRUE(trace::readTraceFile(path, loaded));
    std::remove(path.c_str());

    analysis::EpochBuilder live(result.runtime->traces());
    analysis::EpochBuilder from_file(loaded);
    EXPECT_EQ(live.epochCount(), from_file.epochCount());
    EXPECT_EQ(live.transactions().size(),
              from_file.transactions().size());

    // And the simulator accepts the loaded trace.
    sim::Simulator sim_run(sim::SimParams{},
                           sim::ModelKind::HopsNvm);
    EXPECT_GT(sim_run.run(loaded).cycles, 0u);
}

} // namespace
} // namespace whisper

/**
 * @file
 * Unit tests for the PM device model: durability of flush+fence and
 * NTI+fence, volatility of unfenced stores, crash injection.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logical_clock.hh"
#include "pm/pm_context.hh"
#include "pm/pm_pool.hh"
#include "pm/poff.hh"

namespace whisper
{
namespace
{

struct PoolWorld
{
    pm::PmPool pool{1 << 20};
    LogicalClock clock;
    trace::TraceBuffer tb{0};
    pm::PmContext ctx{pool, clock, 0, &tb};
};

TEST(PmPool, StoreIsVisibleButNotDurable)
{
    PoolWorld w;
    const std::uint64_t v = 0xDEADBEEF;
    w.ctx.store(128, &v, 8);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(128), v);
    EXPECT_EQ(*w.pool.durableAt<std::uint64_t>(128), 0u);
    EXPECT_TRUE(w.pool.lineDirty(lineOf(128)));
}

TEST(PmPool, FlushAloneIsNotDurable)
{
    PoolWorld w;
    const std::uint64_t v = 7;
    w.ctx.store(0, &v, 8);
    w.ctx.flush(0, 8);
    EXPECT_EQ(*w.pool.durableAt<std::uint64_t>(0), 0u);
}

TEST(PmPool, FlushPlusFenceIsDurable)
{
    PoolWorld w;
    const std::uint64_t v = 7;
    w.ctx.store(0, &v, 8);
    w.ctx.flush(0, 8);
    w.ctx.fence();
    EXPECT_EQ(*w.pool.durableAt<std::uint64_t>(0), 7u);
    EXPECT_FALSE(w.pool.lineDirty(0));
}

TEST(PmPool, FenceOnlyDrainsOwnThreadsFlushes)
{
    pm::PmPool pool(1 << 20);
    LogicalClock clock;
    trace::TraceBuffer tb0(0), tb1(1);
    pm::PmContext c0(pool, clock, 0, &tb0);
    pm::PmContext c1(pool, clock, 1, &tb1);
    const std::uint64_t v = 9;
    c0.store(0, &v, 8);
    c0.flush(0, 8);
    c1.fence(); // thread 1's fence must not drain thread 0's clwb
    EXPECT_EQ(*pool.durableAt<std::uint64_t>(0), 0u);
    c0.fence();
    EXPECT_EQ(*pool.durableAt<std::uint64_t>(0), 9u);
}

TEST(PmPool, NtStoreDurableAfterFence)
{
    PoolWorld w;
    const std::uint64_t v = 11;
    w.ctx.ntStore(256, &v, 8);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(256), 11u);
    EXPECT_EQ(*w.pool.durableAt<std::uint64_t>(256), 0u);
    w.ctx.fence();
    EXPECT_EQ(*w.pool.durableAt<std::uint64_t>(256), 11u);
}

TEST(PmPool, CrashHardLosesUnfenced)
{
    PoolWorld w;
    const std::uint64_t a = 1, b = 2;
    w.ctx.store(0, &a, 8);
    w.ctx.flush(0, 8);
    w.ctx.fence();
    w.ctx.store(64, &b, 8); // never flushed/fenced
    w.pool.crashHard();
    EXPECT_EQ(*w.pool.at<std::uint64_t>(0), 1u);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(64), 0u);
    EXPECT_EQ(w.pool.dirtyLineCount(), 0u);
}

TEST(PmPool, CrashWithFullSurvivalKeepsDirtyLines)
{
    PoolWorld w;
    const std::uint64_t b = 2;
    w.ctx.store(64, &b, 8);
    Rng rng(1);
    w.pool.crash(rng, 1.0); // every dirty line "was evicted in time"
    EXPECT_EQ(*w.pool.at<std::uint64_t>(64), 2u);
}

TEST(PmPool, CrashWithZeroSurvivalDropsDirtyLines)
{
    PoolWorld w;
    const std::uint64_t b = 2;
    w.ctx.store(64, &b, 8);
    Rng rng(1);
    w.pool.crash(rng, 0.0);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(64), 0u);
}

TEST(PmPool, CrashOutcomeIsPerLine)
{
    // With survival 0.5 and many lines, some persist and some do not.
    PoolWorld w;
    for (Addr off = 0; off < 64 * 256; off += 64) {
        const std::uint64_t v = off + 1;
        w.ctx.store(off, &v, 8);
    }
    Rng rng(99);
    w.pool.crash(rng, 0.5);
    int kept = 0, lost = 0;
    for (Addr off = 0; off < 64 * 256; off += 64) {
        if (*w.pool.at<std::uint64_t>(off) == off + 1)
            kept++;
        else
            lost++;
    }
    EXPECT_GT(kept, 32);
    EXPECT_GT(lost, 32);
}

TEST(PmPool, CrashStatsCountSurvivorsSeparatelyFromEvictions)
{
    // Regression: crash() used to book surviving lines as
    // linesEvicted, conflating cache-pressure evictions with crash
    // luck and skewing any eviction-rate analysis.
    PoolWorld w;
    for (Addr off = 0; off < 64 * 8; off += 64) {
        const std::uint64_t v = off + 1;
        w.ctx.store(off, &v, 8);
    }
    const std::uint64_t evicted_before = w.pool.stats().linesEvicted;
    Rng rng(1);
    w.pool.crash(rng, 1.0); // all 8 dirty lines survive
    EXPECT_EQ(w.pool.stats().linesSurvivedCrash, 8u);
    EXPECT_EQ(w.pool.stats().linesEvicted, evicted_before);
    EXPECT_EQ(w.pool.stats().crashes, 1u);
}

TEST(PmPool, CrashHardSurvivesNothingAndBooksNothing)
{
    PoolWorld w;
    const std::uint64_t v = 7;
    w.ctx.store(0, &v, 8);
    w.pool.crashHard();
    EXPECT_EQ(w.pool.stats().linesSurvivedCrash, 0u);
    EXPECT_EQ(w.pool.stats().linesEvicted, 0u);
}

TEST(PmPool, CrashWithSurvivorsKeepsExactlyThatSet)
{
    PoolWorld w;
    for (Addr off = 0; off < 64 * 4; off += 64) {
        const std::uint64_t v = off + 1;
        w.ctx.store(off, &v, 8);
    }
    // Keep lines 0 and 2; line addresses are byte offsets / 64.
    w.pool.crashWithSurvivors({0, 2});
    EXPECT_EQ(*w.pool.at<std::uint64_t>(0), 1u);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(64), 0u);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(128), 129u);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(192), 0u);
    EXPECT_EQ(w.pool.stats().linesSurvivedCrash, 2u);
    EXPECT_EQ(w.pool.dirtyLineCount(), 0u);
}

TEST(PmPool, PickSurvivorsIsSeedDeterministic)
{
    PoolWorld w;
    for (Addr off = 0; off < 64 * 64; off += 64) {
        const std::uint64_t v = off + 1;
        w.ctx.store(off, &v, 8);
    }
    Rng rng_a(42), rng_b(42);
    const auto a = w.pool.pickSurvivors(rng_a, 0.5);
    const auto b = w.pool.pickSurvivors(rng_b, 0.5);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.size(), 0u);
    EXPECT_LT(a.size(), 64u);
}

TEST(PmPool, PersistRangeSpansLines)
{
    PoolWorld w;
    std::uint8_t buf[200];
    std::fill(buf, buf + sizeof(buf), 0xAB);
    w.ctx.store(60, buf, sizeof(buf)); // spans 4+ lines
    w.pool.persistRange(60, sizeof(buf));
    for (std::size_t i = 0; i < sizeof(buf); i++)
        EXPECT_EQ(w.pool.durableBase()[60 + i], 0xAB);
}

TEST(PmPool, OffsetOfRoundTrips)
{
    PoolWorld w;
    auto *p = w.pool.at<std::uint32_t>(4096);
    EXPECT_EQ(w.pool.offsetOf(p), 4096u);
    EXPECT_TRUE(w.pool.contains(p));
    int local = 0;
    EXPECT_FALSE(w.pool.contains(&local));
}

TEST(PmPool, EvictRandomLinesPersistsSome)
{
    PoolWorld w;
    const std::uint64_t v = 3;
    for (Addr off = 0; off < 64 * 64; off += 64)
        w.ctx.store(off, &v, 8);
    Rng rng(5);
    w.pool.evictRandomLines(rng, 5000);
    EXPECT_LT(w.pool.dirtyLineCount(), 64u);
}

TEST(PmContext, PersistHelper)
{
    PoolWorld w;
    const std::uint64_t v = 21;
    w.ctx.store(512, &v, 8);
    w.ctx.persist(512, 8);
    EXPECT_EQ(*w.pool.durableAt<std::uint64_t>(512), 21u);
}

TEST(PmContext, StoreFieldAndLoadField)
{
    PoolWorld w;
    struct Rec { std::uint64_t a; std::uint64_t b; };
    auto *rec = w.pool.at<Rec>(1024);
    w.ctx.storeField(rec->b, std::uint64_t{77});
    EXPECT_EQ(w.ctx.loadField(rec->b), 77u);
    EXPECT_EQ(w.ctx.loadField(rec->a), 0u);
}

TEST(PmContext, TraceEventsEmitted)
{
    PoolWorld w;
    const std::uint64_t v = 1;
    w.ctx.store(0, &v, 8);
    w.ctx.flush(0, 8);
    w.ctx.fence(pm::FenceKind::Durability);
    const auto &events = w.tb.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, trace::EventKind::PmStore);
    EXPECT_EQ(events[1].kind, trace::EventKind::PmFlush);
    EXPECT_EQ(events[2].kind, trace::EventKind::Fence);
    EXPECT_EQ(events[2].fenceKind(), trace::FenceKind::Durability);
    EXPECT_LT(events[0].ts, events[1].ts);
    EXPECT_LT(events[1].ts, events[2].ts);
}

TEST(POff, NullAndDeref)
{
    PoolWorld w;
    pm::POff<std::uint64_t> p;
    EXPECT_TRUE(p.isNull());
    p = pm::POff<std::uint64_t>(64);
    EXPECT_FALSE(p.isNull());
    *p.get(w.pool) = 5;
    EXPECT_EQ(*w.pool.at<std::uint64_t>(64), 5u);
    // Zero-filled PM is not a valid pointer.
    EXPECT_NE(pm::POff<std::uint64_t>(0), pm::POff<std::uint64_t>());
}

TEST(PmPool, BoundsViolationPanics)
{
    pm::PmPool pool(4096);
    EXPECT_DEATH(pool.at<std::uint64_t>(4095), "outside pool");
}

TEST(PmPool, PoisonedLineRaisesMediaErrorUntilScrubbed)
{
    PoolWorld w;
    const std::uint64_t v = 9;
    w.ctx.store(256, &v, 8);
    w.ctx.flush(256, 8);
    w.ctx.fence();

    w.pool.poisonLine(lineOf(256));
    EXPECT_TRUE(w.pool.linePoisoned(lineOf(256)));
    std::uint64_t out = 0;
    EXPECT_THROW(w.ctx.load(256, &out, 8), pm::PmMediaError);
    EXPECT_GE(w.pool.stats().mediaErrors.load(), 1u);

    w.pool.scrubLine(lineOf(256));
    EXPECT_FALSE(w.pool.linePoisoned(lineOf(256)));
    EXPECT_GE(w.pool.stats().linesScrubbed.load(), 1u);
    // A scrubbed line reads zero from both images: content is gone.
    out = ~std::uint64_t(0);
    w.ctx.load(256, &out, 8);
    EXPECT_EQ(out, 0u);
    EXPECT_EQ(*w.pool.durableAt<std::uint64_t>(256), 0u);
}

TEST(PmPool, StoreReprogramsPoisonedLine)
{
    PoolWorld w;
    w.pool.poisonLine(lineOf(512));
    const std::uint64_t v = 0xABCD;
    w.ctx.store(512, &v, 8);
    EXPECT_FALSE(w.pool.linePoisoned(lineOf(512)));
    EXPECT_GE(w.pool.stats().poisonCleared.load(), 1u);
    std::uint64_t out = 0;
    w.ctx.load(512, &out, 8); // no throw: the line was re-programmed
    EXPECT_EQ(out, v);
}

TEST(PmPool, CrashWithFaultsTearsAtWordGranularity)
{
    PoolWorld w;
    std::uint64_t words[8];
    for (std::uint64_t i = 0; i < 8; i++)
        words[i] = 100 + i;
    w.ctx.store(0, words, sizeof(words));

    // Persist only words 0, 2 and 7 of the surviving line.
    pm::FaultResolution faults;
    faults.torn.push_back({0, 0b10000101});
    w.pool.crashWithFaults({0}, faults);

    for (std::uint64_t i = 0; i < 8; i++) {
        const std::uint64_t expect =
            (i == 0 || i == 2 || i == 7) ? 100 + i : 0;
        EXPECT_EQ(*w.pool.at<std::uint64_t>(i * 8), expect) << i;
    }
    EXPECT_EQ(w.pool.stats().linesTorn.load(), 1u);
}

TEST(PmPool, CrashWithFaultsPoisonsLinesOutright)
{
    PoolWorld w;
    const std::uint64_t v = 41;
    w.ctx.store(64, &v, 8);

    pm::FaultResolution faults;
    faults.poisoned.push_back(lineOf(64));
    w.pool.crashWithFaults({lineOf(64)}, faults);

    EXPECT_TRUE(w.pool.linePoisoned(lineOf(64)));
    EXPECT_EQ(w.pool.poisonedLines(),
              std::vector<LineAddr>{lineOf(64)});
    std::uint64_t out = 0;
    EXPECT_THROW(w.ctx.load(64, &out, 8), pm::PmMediaError);
    EXPECT_EQ(w.pool.stats().linesPoisoned.load(), 1u);
}

TEST(PmPool, ResolveFaultsIsDeterministicAndBounded)
{
    PoolWorld w;
    std::vector<LineAddr> survivors;
    for (Addr off = 0; off < 64 * 64; off += 64) {
        const std::uint64_t v = off + 1;
        w.ctx.store(off, &v, 8);
        if ((off / 64) % 2 == 0)
            survivors.push_back(lineOf(off));
    }
    pm::FaultPlan plan;
    plan.seed = 0x5eed;
    plan.poisonCount = 3;
    plan.tearProb = 0.5;

    const pm::FaultResolution a = w.pool.resolveFaults(plan, survivors);
    const pm::FaultResolution b = w.pool.resolveFaults(plan, survivors);
    ASSERT_EQ(a.poisoned.size(), b.poisoned.size());
    EXPECT_EQ(a.poisoned, b.poisoned);
    ASSERT_EQ(a.torn.size(), b.torn.size());
    for (std::size_t i = 0; i < a.torn.size(); i++) {
        EXPECT_EQ(a.torn[i].line, b.torn[i].line);
        EXPECT_EQ(a.torn[i].mask, b.torn[i].mask);
    }

    // Bounds: at most poisonCount poisoned lines, all from the dirty
    // set; torn lines are survivors not also poisoned, with masks
    // that neither persist nor drop the whole line.
    EXPECT_LE(a.poisoned.size(), plan.poisonCount);
    for (const pm::TornLine &t : a.torn) {
        EXPECT_NE(t.mask, 0u);
        EXPECT_NE(t.mask, 0xFFu);
        EXPECT_TRUE(std::find(survivors.begin(), survivors.end(),
                              t.line) != survivors.end());
        EXPECT_TRUE(std::find(a.poisoned.begin(), a.poisoned.end(),
                              t.line) == a.poisoned.end());
    }
    // A different seed resolves differently (overwhelmingly likely
    // with 32 survivors at 50% tear).
    plan.seed = 0x5eee;
    const pm::FaultResolution c = w.pool.resolveFaults(plan, survivors);
    EXPECT_TRUE(c.poisoned != a.poisoned || c.torn.size() !=
                a.torn.size());
}

TEST(PmPool, TransientFaultsRetryInvisibly)
{
    PoolWorld w;
    const std::uint64_t v = 77;
    w.ctx.store(128, &v, 8);
    pm::FaultPlan plan;
    plan.seed = 1;
    plan.transientEvery = 3;
    w.pool.setFaultPlan(plan);

    std::uint64_t out = 0;
    for (int i = 0; i < 12; i++) {
        w.ctx.load(128, &out, 8); // never throws: retries succeed
        EXPECT_EQ(out, v);
    }
    EXPECT_GE(w.pool.stats().transientFaults.load(), 3u);
    EXPECT_EQ(w.pool.stats().mediaErrors.load(), 0u);
}

} // namespace
} // namespace whisper

/**
 * @file
 * Unit, integration and crash-property tests for the PMFS-like
 * filesystem (journal, B-tree block maps, syscall surface, fsck).
 */

#include <gtest/gtest.h>

#include "common/logical_clock.hh"
#include "pmfs/pmfs.hh"

namespace whisper::pmfs
{
namespace
{

struct FsWorld
{
    pm::PmPool pool{64 << 20};
    LogicalClock clock;
    trace::TraceBuffer tb{0};
    pm::PmContext ctx{pool, clock, 0, &tb};
};

TEST(Pmfs, MkfsProducesCleanFs)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    std::string why;
    EXPECT_TRUE(fs.fsck(w.ctx, &why)) << why;
    EXPECT_TRUE(fs.readdir(w.ctx, "/").empty());
}

TEST(Pmfs, CreateLookupUnlink)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    const Ino ino = fs.create(w.ctx, "/hello");
    ASSERT_NE(ino, kInvalidIno);
    EXPECT_EQ(fs.lookup(w.ctx, "/hello"), ino);
    EXPECT_EQ(fs.lookup(w.ctx, "/nope"), kInvalidIno);
    EXPECT_TRUE(fs.unlink(w.ctx, "/hello"));
    EXPECT_EQ(fs.lookup(w.ctx, "/hello"), kInvalidIno);
    std::string why;
    EXPECT_TRUE(fs.fsck(w.ctx, &why)) << why;
}

TEST(Pmfs, DuplicateCreateFails)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    ASSERT_NE(fs.create(w.ctx, "/a"), kInvalidIno);
    EXPECT_EQ(fs.create(w.ctx, "/a"), kInvalidIno);
}

TEST(Pmfs, WriteReadRoundTrip)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    const Ino ino = fs.create(w.ctx, "/data");
    Rng rng(4);
    std::vector<std::uint8_t> buf(10000);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(fs.write(w.ctx, ino, 0, buf.data(), buf.size()),
              static_cast<long>(buf.size()));
    EXPECT_EQ(fs.fileSize(w.ctx, ino), buf.size());
    std::vector<std::uint8_t> out(buf.size());
    EXPECT_EQ(fs.read(w.ctx, ino, 0, out.data(), out.size()),
              static_cast<long>(out.size()));
    EXPECT_EQ(out, buf);
}

TEST(Pmfs, UnalignedOverwrite)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    const Ino ino = fs.create(w.ctx, "/f");
    std::vector<std::uint8_t> base(8192, 0x11);
    fs.write(w.ctx, ino, 0, base.data(), base.size());
    std::vector<std::uint8_t> patch(100, 0x22);
    fs.write(w.ctx, ino, 4000, patch.data(), patch.size());
    std::vector<std::uint8_t> out(8192);
    fs.read(w.ctx, ino, 0, out.data(), out.size());
    EXPECT_EQ(out[3999], 0x11);
    EXPECT_EQ(out[4000], 0x22);
    EXPECT_EQ(out[4099], 0x22);
    EXPECT_EQ(out[4100], 0x11);
    EXPECT_EQ(fs.fileSize(w.ctx, ino), 8192u);
}

TEST(Pmfs, AppendGrowsFile)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    const Ino ino = fs.create(w.ctx, "/log");
    for (int i = 0; i < 50; i++) {
        char line[32];
        const int n = std::snprintf(line, sizeof(line), "entry %d\n", i);
        EXPECT_EQ(fs.append(w.ctx, ino, line, n), n);
    }
    EXPECT_GT(fs.fileSize(w.ctx, ino), 400u);
    std::string why;
    EXPECT_TRUE(fs.fsck(w.ctx, &why)) << why;
}

TEST(Pmfs, LargeFileSplitsBtree)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 48 << 20);
    const Ino ino = fs.create(w.ctx, "/big");
    // > 254 blocks forces a leaf split and an inner root.
    std::vector<std::uint8_t> chunk(kBlockSize, 0x5A);
    for (int b = 0; b < 300; b++) {
        chunk[0] = static_cast<std::uint8_t>(b);
        ASSERT_EQ(fs.write(w.ctx, ino, b * kBlockSize, chunk.data(),
                           chunk.size()),
                  static_cast<long>(kBlockSize));
    }
    EXPECT_EQ(fs.fileSize(w.ctx, ino), 300u * kBlockSize);
    for (int b = 0; b < 300; b += 37) {
        std::uint8_t first = 0;
        fs.read(w.ctx, ino, b * kBlockSize, &first, 1);
        EXPECT_EQ(first, static_cast<std::uint8_t>(b));
    }
    std::string why;
    EXPECT_TRUE(fs.fsck(w.ctx, &why)) << why;
}

TEST(Pmfs, DirectoriesNestAndList)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    ASSERT_NE(fs.mkdir(w.ctx, "/a"), kInvalidIno);
    ASSERT_NE(fs.mkdir(w.ctx, "/a/b"), kInvalidIno);
    ASSERT_NE(fs.create(w.ctx, "/a/b/c"), kInvalidIno);
    ASSERT_NE(fs.create(w.ctx, "/a/d"), kInvalidIno);
    const auto names = fs.readdir(w.ctx, "/a");
    EXPECT_EQ(names.size(), 2u);
    EXPECT_NE(fs.lookup(w.ctx, "/a/b/c"), kInvalidIno);
    // Non-empty directories cannot be unlinked.
    EXPECT_FALSE(fs.unlink(w.ctx, "/a/b"));
    EXPECT_TRUE(fs.unlink(w.ctx, "/a/b/c"));
    EXPECT_TRUE(fs.unlink(w.ctx, "/a/b"));
    std::string why;
    EXPECT_TRUE(fs.fsck(w.ctx, &why)) << why;
}

TEST(Pmfs, ManyFilesInOneDirectory)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 48 << 20);
    for (int i = 0; i < 300; i++) {
        ASSERT_NE(fs.create(w.ctx, "/f" + std::to_string(i)),
                  kInvalidIno)
            << i;
    }
    EXPECT_EQ(fs.readdir(w.ctx, "/").size(), 300u);
    for (int i = 0; i < 300; i += 2)
        EXPECT_TRUE(fs.unlink(w.ctx, "/f" + std::to_string(i)));
    EXPECT_EQ(fs.readdir(w.ctx, "/").size(), 150u);
    std::string why;
    EXPECT_TRUE(fs.fsck(w.ctx, &why)) << why;
}

TEST(Pmfs, UnlinkReleasesBlocks)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    const Ino ino = fs.create(w.ctx, "/fat");
    // The create may have grown the root directory by one block;
    // measure from here so unlink must release exactly the file's
    // data and B-tree blocks.
    const std::uint64_t free_before = fs.freeBlockCount();
    std::vector<std::uint8_t> buf(64 * kBlockSize, 1);
    fs.write(w.ctx, ino, 0, buf.data(), buf.size());
    EXPECT_LT(fs.freeBlockCount(), free_before - 60);
    fs.unlink(w.ctx, "/fat");
    EXPECT_EQ(fs.freeBlockCount(), free_before);
}

TEST(Pmfs, UserDataIsNti)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    const Ino ino = fs.create(w.ctx, "/f");
    const auto before = w.tb.counters();
    std::vector<std::uint8_t> buf(kBlockSize, 7);
    fs.write(w.ctx, ino, 0, buf.data(), buf.size());
    const auto after = w.tb.counters();
    // The 4 KB payload went through non-temporal stores; metadata
    // through cacheable stores — the paper's ~96% NTI observation.
    EXPECT_GT(after.pmNtStores, before.pmNtStores);
    const std::uint64_t user =
        after.pmBytesByClass[static_cast<int>(trace::DataClass::User)] -
        before.pmBytesByClass[static_cast<int>(trace::DataClass::User)];
    EXPECT_GE(user, kBlockSize);
}

TEST(Pmfs, MetadataAmplificationNearPaper)
{
    // ~400 extra bytes per 4096-byte append (10%), per paper §5.2.
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    const Ino ino = fs.create(w.ctx, "/f");
    std::vector<std::uint8_t> buf(kBlockSize, 7);
    // Warm up the btree (first block allocates the leaf node).
    fs.write(w.ctx, ino, 0, buf.data(), buf.size());
    const auto before = w.tb.counters();
    for (int i = 1; i <= 16; i++)
        fs.write(w.ctx, ino, i * kBlockSize, buf.data(), buf.size());
    const auto after = w.tb.counters();
    const double user = static_cast<double>(
        after.pmBytesByClass[static_cast<int>(trace::DataClass::User)] -
        before
            .pmBytesByClass[static_cast<int>(trace::DataClass::User)]);
    double meta = 0;
    for (int c : {1, 2, 3, 4}) { // Log, AllocMeta, TxMeta, FsMeta
        meta += static_cast<double>(after.pmBytesByClass[c] -
                                    before.pmBytesByClass[c]);
    }
    EXPECT_GT(meta / user, 0.02);
    EXPECT_LT(meta / user, 0.6);
}

TEST(Pmfs, MountAfterCleanRunKeepsEverything)
{
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    const Ino ino = fs.create(w.ctx, "/keep");
    std::vector<std::uint8_t> buf(5000, 0x3C);
    fs.write(w.ctx, ino, 0, buf.data(), buf.size());

    w.pool.crashHard();
    w.ctx.resetPendingState();

    Pmfs fs2(0, 32 << 20);
    fs2.mount(w.ctx);
    std::string why;
    EXPECT_TRUE(fs2.fsck(w.ctx, &why)) << why;
    const Ino found = fs2.lookup(w.ctx, "/keep");
    ASSERT_NE(found, kInvalidIno);
    EXPECT_EQ(fs2.fileSize(w.ctx, found), 5000u);
    std::vector<std::uint8_t> out(5000);
    fs2.read(w.ctx, found, 0, out.data(), out.size());
    EXPECT_EQ(out, buf);
}

TEST(MetaJournal, RollsBackUncommittedMutations)
{
    FsWorld w;
    MetaJournal journal(w.ctx, 0);
    const Addr target = 4 << 20;
    const std::uint64_t old_val = 111;
    w.ctx.store(target, &old_val, 8);
    w.ctx.persist(target, 8);

    journal.begin(w.ctx);
    journal.logOld(w.ctx, target, 8);
    const std::uint64_t new_val = 222;
    w.ctx.store(target, &new_val, 8);
    w.ctx.flush(target, 8);
    w.ctx.fence(); // the mutation even became durable...
    w.pool.crashHard();
    w.ctx.resetPendingState();

    MetaJournal again(0);
    again.recover(w.ctx); // ...but the tx never committed: roll back
    EXPECT_EQ(*w.pool.at<std::uint64_t>(target), 111u);
}

TEST(MetaJournal, CommittedMutationsSurvive)
{
    FsWorld w;
    MetaJournal journal(w.ctx, 0);
    const Addr target = 4 << 20;
    journal.begin(w.ctx);
    journal.logOld(w.ctx, target, 8);
    const std::uint64_t new_val = 333;
    w.ctx.store(target, &new_val, 8);
    journal.commit(w.ctx);
    w.pool.crashHard();
    w.ctx.resetPendingState();

    MetaJournal again(0);
    again.recover(w.ctx);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(target), 333u);
}

TEST(MetaJournal, TornTailRecordIsIgnored)
{
    // A record whose payload checksum does not validate marks the
    // point the crash interrupted logging; nothing after it was
    // mutated, so recovery must stop there (and roll back the rest).
    FsWorld w;
    MetaJournal journal(w.ctx, 0);
    const Addr t1 = 4 << 20, t2 = (4 << 20) + 64;
    const std::uint64_t v1 = 1, v2 = 2;
    w.ctx.store(t1, &v1, 8);
    w.ctx.store(t2, &v2, 8);
    w.ctx.persist(t1, 8);
    w.ctx.persist(t2, 8);

    journal.begin(w.ctx);
    journal.logOld(w.ctx, t1, 8);
    const std::uint64_t nv = 100;
    w.ctx.store(t1, &nv, 8);
    w.ctx.flush(t1, 8);
    w.ctx.fence();
    journal.logOld(w.ctx, t2, 8);
    // Corrupt the second record's payload in the durable image by
    // storing+persisting garbage over it (simulating a torn line).
    const Addr second_rec = kCacheLineSize +
                            sizeof(JournalRecord) + 8; // after rec 1
    const std::uint64_t garbage = 0xBAD;
    w.ctx.store(second_rec + sizeof(JournalRecord), &garbage, 8,
                pm::DataClass::Log);
    w.ctx.persist(second_rec + sizeof(JournalRecord), 8);
    w.pool.crashHard();
    w.ctx.resetPendingState();

    MetaJournal again(0);
    again.recover(w.ctx);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(t1), 1u);  // rolled back
    EXPECT_EQ(*w.pool.at<std::uint64_t>(t2), 2u);  // untouched
}

class PmfsCrashSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PmfsCrashSweep, FsckHoldsAfterAdversarialCrash)
{
    const std::uint64_t seed = GetParam();
    FsWorld w;
    Pmfs fs(w.ctx, 0, 32 << 20);
    Rng rng(seed);
    std::vector<std::string> files;
    std::vector<std::uint8_t> buf(3 * kBlockSize);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng());

    for (int op = 0; op < 60; op++) {
        const double pick = rng.nextDouble();
        if (pick < 0.4 || files.empty()) {
            const std::string path =
                "/f" + std::to_string(seed) + "_" + std::to_string(op);
            const Ino ino = fs.create(w.ctx, path);
            if (ino != kInvalidIno) {
                files.push_back(path);
                fs.write(w.ctx, ino, 0, buf.data(),
                         64 + rng.next(buf.size() - 64));
            }
        } else if (pick < 0.7) {
            const Ino ino =
                fs.lookup(w.ctx, files[rng.next(files.size())]);
            if (ino != kInvalidIno)
                fs.append(w.ctx, ino, buf.data(), 1 + rng.next(6000));
        } else {
            const std::size_t idx = rng.next(files.size());
            if (fs.unlink(w.ctx, files[idx])) {
                files[idx] = files.back();
                files.pop_back();
            }
        }
    }

    // Adversarial power failure, then remount: metadata must be
    // perfectly consistent, whatever subset of dirty lines survived.
    w.pool.crash(rng, 0.5);
    w.ctx.resetPendingState();
    Pmfs fs2(0, 32 << 20);
    fs2.mount(w.ctx);
    std::string why;
    EXPECT_TRUE(fs2.fsck(w.ctx, &why)) << "seed " << seed << ": " << why;
    // All surviving files are readable to their full size.
    for (const auto &path : files) {
        const Ino ino = fs2.lookup(w.ctx, path);
        ASSERT_NE(ino, kInvalidIno) << path;
        std::vector<std::uint8_t> out(fs2.fileSize(w.ctx, ino));
        if (!out.empty()) {
            EXPECT_EQ(fs2.read(w.ctx, ino, 0, out.data(), out.size()),
                      static_cast<long>(out.size()));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmfsCrashSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

} // namespace
} // namespace whisper::pmfs

/**
 * @file
 * Stress and edge-case tests: log-segment wraparound, abort paths,
 * multithreaded allocator and filesystem use, survival-probability
 * sweeps of the crash model, and adversarial trace shapes for the
 * analyses.
 */

#include <gtest/gtest.h>

#include <thread>

#include "analysis/dependency.hh"
#include "analysis/epoch_stats.hh"
#include "common/logical_clock.hh"
#include "core/runtime.hh"
#include "pmfs/pmfs.hh"
#include "txlib/mnemosyne.hh"
#include "txlib/nvml.hh"

namespace whisper
{
namespace
{

// ------------------------------------------------ log ring behaviour

TEST(LogRing, MnemosyneWrapsThroughAllSegments)
{
    // More transactions than segments: every segment gets reused and
    // every commit must still be durable and recoverable.
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    trace::TraceBuffer tb(0);
    pm::PmContext ctx(pool, clock, 0, &tb);
    mne::MnemosyneHeap heap(ctx, 0, 32 << 20, 1);
    const Addr obj = heap.pmalloc(ctx, 64);

    const unsigned rounds = mne::MnemosyneHeap::kLogSegments * 3 + 5;
    for (unsigned i = 0; i < rounds; i++) {
        mne::Transaction tx(heap, ctx);
        const std::uint64_t v = i + 1;
        tx.update(obj, &v, 8);
        tx.commit();
    }
    pool.crashHard();
    ctx.resetPendingState();
    mne::MnemosyneHeap again(0, 32 << 20, 1);
    again.recover(ctx);
    EXPECT_EQ(*pool.at<std::uint64_t>(obj),
              static_cast<std::uint64_t>(rounds));
}

TEST(LogRing, NvmlWrapsThroughAllSegments)
{
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    pm::PmContext ctx(pool, clock, 0, nullptr);
    nvml::NvmlPool npool(ctx, 0, 48 << 20, 1);
    Addr obj;
    {
        nvml::TxContext tx(npool, ctx);
        obj = tx.txAlloc(64);
        const std::uint64_t zero = 0;
        tx.directStore(obj, &zero, 8);
        tx.commit();
    }
    const unsigned rounds = nvml::NvmlPool::kLogSegments * 3 + 5;
    for (unsigned i = 0; i < rounds; i++) {
        nvml::TxContext tx(npool, ctx);
        auto *cell = pool.at<std::uint64_t>(obj);
        tx.set(*cell, static_cast<std::uint64_t>(i + 1));
        tx.commit();
    }
    pool.crashHard();
    ctx.resetPendingState();
    nvml::NvmlPool again(0, 48 << 20, 1);
    again.recover(ctx);
    EXPECT_EQ(*pool.at<std::uint64_t>(obj),
              static_cast<std::uint64_t>(rounds));
}

TEST(LogRing, StaleSegmentNeverReplaysAfterReuse)
{
    // A committed tx leaves its records in the retired segment; 16
    // transactions later the segment is reused, crashes mid-tx, and
    // recovery must roll back ONLY the new transaction's records.
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    pm::PmContext ctx(pool, clock, 0, nullptr);
    mne::MnemosyneHeap heap(ctx, 0, 32 << 20, 1);
    const Addr a = heap.pmalloc(ctx, 64);
    const Addr b = heap.pmalloc(ctx, 64);

    for (unsigned i = 0; i <= mne::MnemosyneHeap::kLogSegments; i++) {
        mne::Transaction tx(heap, ctx);
        const std::uint64_t v = 100 + i;
        tx.update(a, &v, 8);
        tx.commit();
    }
    // Crash inside a fresh tx that reuses segment 0 and touches b.
    {
        auto *tx = new mne::Transaction(heap, ctx); // leaked: crash
        const std::uint64_t v = 999;
        tx->update(b, &v, 8);
        pool.crashHard();
        ctx.resetPendingState();
    }
    mne::MnemosyneHeap again(0, 32 << 20, 1);
    again.recover(ctx);
    // a keeps the last committed value; b was never committed.
    EXPECT_EQ(*pool.at<std::uint64_t>(a),
              100ull + mne::MnemosyneHeap::kLogSegments);
    EXPECT_EQ(*pool.at<std::uint64_t>(b), 0u);
}

// ------------------------------------------------------- abort paths

TEST(AbortPath, MnemosyneNestedFrees)
{
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    pm::PmContext ctx(pool, clock, 0, nullptr);
    mne::MnemosyneHeap heap(ctx, 0, 32 << 20, 1);
    const auto live_before = heap.allocator().stats().bytesLive;
    for (int i = 0; i < 20; i++) {
        mne::Transaction tx(heap, ctx);
        tx.pmalloc(64);
        tx.pmalloc(200);
        tx.abort();
    }
    EXPECT_EQ(heap.allocator().stats().bytesLive, live_before);
}

TEST(AbortPath, NvmlRestoresAcrossManyRanges)
{
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    pm::PmContext ctx(pool, clock, 0, nullptr);
    nvml::NvmlPool npool(ctx, 0, 48 << 20, 1);
    Addr obj;
    {
        nvml::TxContext tx(npool, ctx);
        obj = tx.txAlloc(512);
        std::vector<std::uint8_t> init(512, 0x5A);
        tx.directStore(obj, init.data(), init.size());
        tx.commit();
    }
    {
        nvml::TxContext tx(npool, ctx);
        // Snapshot + scribble over eight disjoint ranges.
        for (int r = 0; r < 8; r++) {
            tx.addRange(obj + r * 64, 32);
            std::vector<std::uint8_t> junk(32, 0xFF);
            ctx.store(obj + r * 64, junk.data(), junk.size());
        }
        tx.abort();
    }
    for (int i = 0; i < 512; i++)
        ASSERT_EQ(pool.archBase()[obj + i], 0x5A) << i;
}

// --------------------------------------------- multithreaded stress

TEST(Stress, SlabAllocatorParallelAllocFree)
{
    core::Runtime rt(128 << 20, 4);
    alloc::SlabAllocator slab(rt.ctx(0), 0, 96 << 20);
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (unsigned t = 0; t < 4; t++) {
        threads.emplace_back([&, t] {
            pm::PmContext &ctx = rt.ctx(t);
            Rng rng(t);
            std::vector<Addr> mine;
            for (int i = 0; i < 400; i++) {
                if (!mine.empty() && rng.chance(0.4)) {
                    slab.free(ctx, mine.back());
                    mine.pop_back();
                } else {
                    const Addr a =
                        slab.alloc(ctx, 32 + rng.next(400));
                    if (a == kNullAddr) {
                        failed = true;
                        return;
                    }
                    mine.push_back(a);
                }
            }
            for (const Addr a : mine)
                slab.free(ctx, a);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_FALSE(failed);
    EXPECT_EQ(slab.stats().bytesLive, 0u);
}

TEST(Stress, PmfsParallelClients)
{
    core::Runtime rt(128 << 20, 4);
    pmfs::Pmfs fs(rt.ctx(0), 0, 96 << 20);
    fs.mkdir(rt.ctx(0), "/work");
    rt.runThreads(4, [&](pm::PmContext &ctx, ThreadId tid) {
        Rng rng(tid + 11);
        std::vector<std::uint8_t> buf(6000);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng());
        for (int i = 0; i < 30; i++) {
            const std::string path = "/work/t" + std::to_string(tid) +
                                     "_" + std::to_string(i);
            const pmfs::Ino ino = fs.create(ctx, path);
            ASSERT_NE(ino, pmfs::kInvalidIno);
            fs.write(ctx, ino, 0, buf.data(),
                     64 + rng.next(buf.size() - 64));
            if (i % 3 == 0)
                fs.unlink(ctx, path);
        }
    });
    std::string why;
    EXPECT_TRUE(fs.fsck(rt.ctx(0), &why)) << why;
    // 4 threads x 30 creates, every third removed.
    EXPECT_EQ(fs.readdir(rt.ctx(0), "/work").size(), 4u * 20u);
}

TEST(Stress, MnemosyneParallelTransactions)
{
    core::Runtime rt(128 << 20, 4);
    pm::PmContext &ctx0 = rt.ctx(0);
    mne::MnemosyneHeap heap(ctx0, 0, 96 << 20, 4);
    // One shared counter line per thread plus one global.
    const Addr cells = heap.pmalloc(ctx0, 5 * 64);
    const std::uint64_t zero = 0;
    for (int i = 0; i < 5; i++)
        ctx0.store(cells + i * 64, &zero, 8);
    ctx0.persist(cells, 5 * 64);

    std::mutex global_lock;
    rt.runThreads(4, [&](pm::PmContext &ctx, ThreadId tid) {
        for (int i = 0; i < 100; i++) {
            std::lock_guard<std::mutex> guard(global_lock);
            mne::Transaction tx(heap, ctx);
            auto *mine = ctx.pool().at<std::uint64_t>(
                cells + (tid + 1) * 64);
            auto *global = ctx.pool().at<std::uint64_t>(cells);
            tx.set(*mine, tx.get(*mine) + 1);
            tx.set(*global, tx.get(*global) + 1);
            tx.commit();
        }
    });
    std::uint64_t sum = 0;
    for (int t = 1; t <= 4; t++)
        sum += *rt.pool().at<std::uint64_t>(cells + t * 64);
    EXPECT_EQ(sum, 400u);
    EXPECT_EQ(*rt.pool().at<std::uint64_t>(cells), 400u);
}

// -------------------------------------- crash-model survival sweep

class SurvivalSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SurvivalSweep, NvmlConsistentAtEverySurvivalRate)
{
    const double survival = GetParam() / 10.0;
    pm::PmPool pool(64 << 20);
    LogicalClock clock;
    pm::PmContext ctx(pool, clock, 0, nullptr);
    nvml::NvmlPool npool(ctx, 0, 48 << 20, 1);
    Addr obj;
    {
        nvml::TxContext tx(npool, ctx);
        obj = tx.txAlloc(128);
        std::uint64_t init[2] = {0, 0};
        tx.directStore(obj, init, sizeof(init));
        tx.commit();
    }
    for (int i = 0; i < 6; i++) {
        nvml::TxContext tx(npool, ctx);
        auto *a = pool.at<std::uint64_t>(obj);
        auto *b = pool.at<std::uint64_t>(obj + 8);
        tx.set(*a, static_cast<std::uint64_t>(i + 1));
        tx.set(*b, static_cast<std::uint64_t>(i + 1));
        tx.commit();
    }
    Rng rng(GetParam() * 31 + 7);
    pool.crash(rng, survival);
    ctx.resetPendingState();
    nvml::NvmlPool again(0, 48 << 20, 1);
    again.recover(ctx);
    EXPECT_EQ(*pool.at<std::uint64_t>(obj),
              *pool.at<std::uint64_t>(obj + 8));
    EXPECT_EQ(*pool.at<std::uint64_t>(obj), 6u);
}

INSTANTIATE_TEST_SUITE_P(Rates, SurvivalSweep,
                         ::testing::Range(0, 11));

// ----------------------------------------- analysis adversarial input

TEST(AnalysisEdge, InterleavedThreadsAttributeCorrectly)
{
    trace::TraceSet set;
    auto *b0 = set.createBuffer(0);
    auto *b1 = set.createBuffer(1);
    // Interleaved in time, but epochs are per-thread constructs.
    b0->push({10, 0, 8, trace::EventKind::PmStore,
              trace::DataClass::User, 0, 0});
    b1->push({11, 640, 8, trace::EventKind::PmStore,
              trace::DataClass::User, 0, 0});
    b0->push({12, 64, 8, trace::EventKind::PmStore,
              trace::DataClass::User, 0, 0});
    b1->push({13, 0, 0, trace::EventKind::Fence,
              trace::DataClass::None, 0, 0});
    b0->push({14, 0, 0, trace::EventKind::Fence,
              trace::DataClass::None, 0, 0});
    analysis::EpochBuilder builder(set);
    ASSERT_EQ(builder.epochCount(), 2u);
    const auto t0 = builder.epochsOf(0);
    const auto t1 = builder.epochsOf(1);
    ASSERT_EQ(t0.size(), 1u);
    ASSERT_EQ(t1.size(), 1u);
    EXPECT_EQ(t0[0]->size(), 2u); // lines 0 and 1
    EXPECT_EQ(t1[0]->size(), 1u);
}

TEST(AnalysisEdge, AbortedTransactionsFlagged)
{
    trace::TraceSet set;
    auto *b = set.createBuffer(0);
    b->push({1, 7, 0, trace::EventKind::TxBegin,
             trace::DataClass::None, 0, 0});
    b->push({2, 0, 8, trace::EventKind::PmStore,
             trace::DataClass::User, 0, 0});
    b->push({3, 0, 0, trace::EventKind::Fence, trace::DataClass::None,
             0, 0});
    b->push({4, 7, 0, trace::EventKind::TxAbort,
             trace::DataClass::None, 0, 0});
    analysis::EpochBuilder builder(set);
    ASSERT_EQ(builder.transactions().size(), 1u);
    EXPECT_TRUE(builder.transactions()[0].aborted);
}

TEST(AnalysisEdge, ExactWindowBoundary)
{
    trace::TraceSet set;
    auto *b = set.createBuffer(0);
    b->push({1000, 0, 8, trace::EventKind::PmStore,
             trace::DataClass::User, 0, 0});
    b->push({1000, 0, 0, trace::EventKind::Fence,
             trace::DataClass::None, 0, 0});
    // Second epoch ends exactly kDependencyWindow later: inclusive.
    b->push({1000 + kDependencyWindow, 0, 8,
             trace::EventKind::PmStore, trace::DataClass::User, 0, 0});
    b->push({1000 + kDependencyWindow, 0, 0, trace::EventKind::Fence,
             trace::DataClass::None, 0, 0});
    analysis::EpochBuilder builder(set);
    const auto deps = analysis::analyzeDependencies(builder);
    EXPECT_EQ(deps.selfDependent, 1u);
}

} // namespace
} // namespace whisper

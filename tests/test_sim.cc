/**
 * @file
 * Unit tests for the timing simulator: cache behaviour, Bloom filter,
 * persistency-model cost ordering, coherence gleaning, and the
 * Figure 10 shape on synthetic traces.
 */

#include <gtest/gtest.h>

#include "sim/bloom.hh"
#include "sim/simulator.hh"

namespace whisper::sim
{
namespace
{

using trace::DataClass;
using trace::EventKind;
using trace::FenceKind;
using trace::TraceEvent;
using trace::TraceSet;

TraceEvent
ev(Tick ts, EventKind kind, Addr addr = 0, std::uint32_t size = 8,
   std::uint8_t aux = 0)
{
    return TraceEvent{ts, addr, size, kind, DataClass::User, aux, 0};
}

// ---------------------------------------------------------------- cache

TEST(SimCache, HitAfterFill)
{
    Cache cache(16, 2);
    EXPECT_FALSE(cache.access(5, false).hit);
    EXPECT_TRUE(cache.access(5, false).hit);
    EXPECT_TRUE(cache.contains(5));
}

TEST(SimCache, LruEviction)
{
    Cache cache(1, 2); // one set, two ways
    cache.access(0, false);
    cache.access(1, false);
    cache.access(0, false); // refresh 0
    const CacheResult r = cache.access(2, false); // evicts 1 (LRU)
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.evictedLine, 1u);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(1));
}

TEST(SimCache, DirtyEvictionReported)
{
    Cache cache(1, 1);
    cache.access(0, true);
    const CacheResult r = cache.access(1, false);
    EXPECT_TRUE(r.evictedDirty);
    EXPECT_EQ(r.evictedLine, 0u);
}

TEST(SimCache, InvalidateReturnsDirtiness)
{
    Cache cache(4, 2);
    cache.access(3, true);
    EXPECT_TRUE(cache.invalidate(3));
    EXPECT_FALSE(cache.contains(3));
    EXPECT_FALSE(cache.invalidate(3));
}

// ---------------------------------------------------------------- bloom

TEST(Bloom, NoFalseNegatives)
{
    CountingBloom bloom(256);
    for (LineAddr l = 0; l < 64; l++)
        bloom.insert(l * 7);
    for (LineAddr l = 0; l < 64; l++)
        EXPECT_TRUE(bloom.mightContain(l * 7));
}

TEST(Bloom, RemoveClearsEventually)
{
    CountingBloom bloom(256);
    bloom.insert(42);
    EXPECT_TRUE(bloom.mightContain(42));
    bloom.remove(42);
    EXPECT_FALSE(bloom.mightContain(42));
}

TEST(Bloom, SaturatedCounterNeverGoesFalseNegative)
{
    // Regression: insert used to wrap the 16-bit counters, so 65536
    // inserts read as "absent" — a false negative the HOPS back end
    // would turn into a missed stall. Saturated counters must pin.
    CountingBloom bloom(64);
    for (int i = 0; i < 0x10000 + 8; i++)
        bloom.insert(9);
    EXPECT_TRUE(bloom.mightContain(9));
    // Once saturated the exact count is lost: removes must not drain
    // the counter back to zero either.
    for (int i = 0; i < 0x10000 + 8; i++)
        bloom.remove(9);
    EXPECT_TRUE(bloom.mightContain(9));
}

TEST(Bloom, RemoveWithoutInsertPanics)
{
    CountingBloom bloom(64);
    EXPECT_DEATH(bloom.remove(123), "underflow");
}

TEST(Bloom, MostlySelective)
{
    CountingBloom bloom(4096);
    for (LineAddr l = 0; l < 32; l++)
        bloom.insert(l);
    int false_pos = 0;
    for (LineAddr l = 1000; l < 2000; l++)
        false_pos += bloom.mightContain(l);
    EXPECT_LT(false_pos, 100);
}

// ----------------------------------------------------- model behaviour

/** A trace shaped like one persistent transaction per iteration. */
TraceSet
makeTxTrace(unsigned iterations, unsigned epochs_per_tx)
{
    TraceSet set(true);
    auto *b = set.createBuffer(0);
    Tick ts = 1;
    Addr addr = 0;
    for (unsigned i = 0; i < iterations; i++) {
        b->push(ev(ts++, EventKind::TxBegin, i));
        for (unsigned e = 0; e < epochs_per_tx; e++) {
            b->push(ev(ts++, EventKind::PmStore, addr));
            b->push(ev(ts++, EventKind::PmFlush, addr));
            addr += 64;
            const bool last = e + 1 == epochs_per_tx;
            b->push(ev(ts++, EventKind::Fence, 0, 0,
                       static_cast<std::uint8_t>(
                           last ? FenceKind::Durability
                                : FenceKind::Ordering)));
        }
        // Some DRAM work between transactions.
        for (int d = 0; d < 100; d++)
            b->push(ev(ts++, EventKind::DramLoad, 4096 + d * 64));
        b->push(ev(ts++, EventKind::TxEnd, i));
    }
    return set;
}

TEST(SimModels, Figure10Ordering)
{
    const TraceSet traces = makeTxTrace(200, 8);
    SimParams params;
    const auto results = runModels(
        traces, params,
        {ModelKind::X86Nvm, ModelKind::X86Pwq, ModelKind::HopsNvm,
         ModelKind::HopsPwq, ModelKind::Ideal});

    const std::uint64_t x86_nvm = results[0].cycles;
    const std::uint64_t x86_pwq = results[1].cycles;
    const std::uint64_t hops_nvm = results[2].cycles;
    const std::uint64_t hops_pwq = results[3].cycles;
    const std::uint64_t ideal = results[4].cycles;

    // The paper's Figure 10 ordering.
    EXPECT_LT(x86_pwq, x86_nvm);   // PWQ helps the baseline (~15%)
    EXPECT_LT(hops_nvm, x86_nvm);  // HOPS beats x86 (~24%)
    EXPECT_LT(hops_nvm, x86_pwq);  // ...even with a PWQ (~10%)
    EXPECT_LT(ideal, hops_nvm);    // ideal is the lower bound
    // PWQ matters far less for HOPS than for x86 (1.4% vs 15.5% in
    // the paper). This synthetic trace is persistence-heavier than
    // the real applications, so bound it loosely here; the Figure 10
    // bench measures the real margins on application traces.
    EXPECT_LT(static_cast<double>(hops_nvm - hops_pwq),
              0.35 * static_cast<double>(hops_nvm));
    EXPECT_LT(hops_nvm - hops_pwq, x86_nvm - x86_pwq);
}

TEST(SimModels, HopsElidesFlushes)
{
    const TraceSet traces = makeTxTrace(50, 4);
    SimParams params;
    Simulator hops(params, ModelKind::HopsNvm);
    const SimResult r = hops.run(traces);
    EXPECT_EQ(r.persist.flushesIssued, 0u);
    EXPECT_GT(r.persist.flushesElided, 0u);
}

TEST(SimModels, X86FenceStallsDominatedByPmLatency)
{
    TraceSet traces(true);
    auto *b = traces.createBuffer(0);
    b->push(ev(1, EventKind::PmStore, 0));
    b->push(ev(2, EventKind::PmFlush, 0));
    b->push(ev(3, EventKind::Fence, 0, 0,
               static_cast<std::uint8_t>(FenceKind::Durability)));
    SimParams params;
    Simulator nvm(params, ModelKind::X86Nvm);
    Simulator pwq(params, ModelKind::X86Pwq);
    const auto r_nvm = nvm.run(traces);
    const auto r_pwq = pwq.run(traces);
    EXPECT_GE(r_nvm.persist.fenceStalls, params.device.pmLat);
    EXPECT_LT(r_pwq.persist.fenceStalls, params.device.pmLat);
}

TEST(SimModels, CrossThreadDependencyGleaned)
{
    // Thread 0 writes a line and keeps it buffered; thread 1 then
    // writes the same line: HOPS must record a cross dependency.
    TraceSet traces(true);
    auto *b0 = traces.createBuffer(0);
    auto *b1 = traces.createBuffer(1);
    b0->push(ev(1, EventKind::PmStore, 0));
    b0->push(ev(2, EventKind::Fence, 0, 0,
                static_cast<std::uint8_t>(FenceKind::Ordering)));
    b1->push(ev(3, EventKind::PmStore, 0));
    b1->push(ev(4, EventKind::Fence, 0, 0,
                static_cast<std::uint8_t>(FenceKind::Durability)));
    SimParams params;
    Simulator hops(params, ModelKind::HopsNvm);
    const SimResult r = hops.run(traces);
    EXPECT_GT(r.persist.crossDepWaits, 0u);
    EXPECT_GT(r.coherenceTransfers, 0u);
}

TEST(SimModels, IdealIgnoresEverything)
{
    const TraceSet traces = makeTxTrace(20, 4);
    SimParams params;
    Simulator ideal(params, ModelKind::Ideal);
    const SimResult r = ideal.run(traces);
    EXPECT_EQ(r.persist.fenceStalls, 0u);
    EXPECT_EQ(r.persist.pbFullStalls, 0u);
}

TEST(SimModels, PbFullStallsWhenBufferTiny)
{
    SimParams params;
    params.pbEntries = 2;
    params.pbDrainThreshold = 1;
    TraceSet traces(true);
    auto *b = traces.createBuffer(0);
    Tick ts = 1;
    for (int i = 0; i < 64; i++)
        b->push(ev(ts++, EventKind::PmStore, i * 64));
    b->push(ev(ts++, EventKind::Fence, 0, 0,
               static_cast<std::uint8_t>(FenceKind::Durability)));
    Simulator hops(params, ModelKind::HopsNvm);
    const SimResult r = hops.run(traces);
    EXPECT_GT(r.persist.pbFullStalls, 0u);
}

TEST(SimModels, DramTrafficTimesTheSameAcrossModels)
{
    // A DRAM-only trace must cost the same under every model
    // (Consequence 11: no overhead on volatile accesses).
    TraceSet traces(true);
    auto *b = traces.createBuffer(0);
    Tick ts = 1;
    for (int i = 0; i < 500; i++)
        b->push(ev(ts++, i % 2 ? EventKind::DramLoad
                               : EventKind::DramStore,
                   (i % 61) * 64));
    SimParams params;
    const auto results = runModels(traces, params,
                                   {ModelKind::X86Nvm,
                                    ModelKind::HopsNvm,
                                    ModelKind::Ideal});
    EXPECT_EQ(results[0].cycles, results[1].cycles);
    EXPECT_EQ(results[1].cycles, results[2].cycles);
}

TEST(SimModels, RepeatedRunsDeterministic)
{
    const TraceSet traces = makeTxTrace(50, 6);
    SimParams params;
    Simulator a(params, ModelKind::HopsNvm);
    Simulator b(params, ModelKind::HopsNvm);
    EXPECT_EQ(a.run(traces).cycles, b.run(traces).cycles);
}

TEST(SimModels, L1CapturesLocality)
{
    TraceSet traces(true);
    auto *b = traces.createBuffer(0);
    Tick ts = 1;
    for (int i = 0; i < 1000; i++)
        b->push(ev(ts++, EventKind::DramLoad, 0)); // same line
    SimParams params;
    Simulator sim(params, ModelKind::Ideal);
    const SimResult r = sim.run(traces);
    EXPECT_GT(r.l1Stats.hitRate(), 0.99);
}

} // namespace
} // namespace whisper::sim

/**
 * @file
 * Unit and crash-property tests for the Mnemosyne (redo) and NVML
 * (undo) transaction libraries.
 */

#include <gtest/gtest.h>

#include "common/logical_clock.hh"
#include "txlib/mnemosyne.hh"
#include "txlib/nvml.hh"

namespace whisper
{
namespace
{

struct TxWorld
{
    pm::PmPool pool{64 << 20};
    LogicalClock clock;
    trace::TraceBuffer tb{0};
    pm::PmContext ctx{pool, clock, 0, &tb};
};

// ------------------------------------------------------------ Mnemosyne

TEST(Mnemosyne, CommitMakesUpdatesDurable)
{
    TxWorld w;
    mne::MnemosyneHeap heap(w.ctx, 0, 16 << 20, 2);
    const Addr obj = heap.pmalloc(w.ctx, 64);
    ASSERT_NE(obj, kNullAddr);

    mne::Transaction tx(heap, w.ctx);
    const std::uint64_t v = 42;
    tx.update(obj, &v, 8);
    tx.commit();

    w.pool.crashHard();
    w.ctx.resetPendingState();
    mne::MnemosyneHeap again(0, 16 << 20, 2);
    again.recover(w.ctx);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(obj), 42u);
}

TEST(Mnemosyne, UncommittedNeverTouchesData)
{
    TxWorld w;
    mne::MnemosyneHeap heap(w.ctx, 0, 16 << 20, 2);
    const Addr obj = heap.pmalloc(w.ctx, 64);
    const std::uint64_t init = 7;
    w.ctx.store(obj, &init, 8);
    w.ctx.persist(obj, 8);

    {
        mne::Transaction tx(heap, w.ctx);
        const std::uint64_t v = 99;
        tx.update(obj, &v, 8);
        // Data stays untouched until commit (kept in the write set).
        EXPECT_EQ(*w.pool.at<std::uint64_t>(obj), 7u);
        EXPECT_EQ(tx.get(*w.pool.at<std::uint64_t>(obj)), 99u);
        tx.abort();
    }
    EXPECT_EQ(*w.pool.at<std::uint64_t>(obj), 7u);
}

TEST(Mnemosyne, CrashMidTxDiscardsLog)
{
    TxWorld w;
    mne::MnemosyneHeap heap(w.ctx, 0, 16 << 20, 2);
    const Addr obj = heap.pmalloc(w.ctx, 64);
    const std::uint64_t init = 7;
    w.ctx.store(obj, &init, 8);
    w.ctx.persist(obj, 8);

    {
        // The crash "kills the process" while the transaction is
        // open: a fired crash plan makes the destructor release host
        // memory without touching the (powered-off) pool.
        mne::Transaction tx(heap, w.ctx);
        const std::uint64_t v = 99;
        tx.update(obj, &v, 8);
        // Crash before commit: redo entries are durable (NTI+fence)
        // but there is no commit record.
        w.pool.crashHard();
        w.ctx.resetPendingState();
        pm::CrashPlan dead;
        dead.fired.store(true);
        w.ctx.setCrashPlan(&dead);
    }
    w.ctx.setCrashPlan(nullptr);

    mne::MnemosyneHeap again(0, 16 << 20, 2);
    again.recover(w.ctx);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(obj), 7u);
}

TEST(Mnemosyne, CrashDuringApplyReplays)
{
    // A committed transaction whose in-place application was cut off
    // must be replayed from the redo log at recovery.
    TxWorld w;
    mne::MnemosyneHeap heap(w.ctx, 0, 16 << 20, 2);
    const Addr obj = heap.pmalloc(w.ctx, 64);

    mne::Transaction tx(heap, w.ctx);
    const std::uint64_t v = 1234;
    tx.update(obj, &v, 8);
    tx.commit();

    // "Un-persist" the data while keeping the log: rewrite the data
    // line in the durable image with zeros, as if the cacheable store
    // had not reached PM before the crash. The log retains the commit
    // record because commit() did not truncate... it did. So instead:
    // crash *without* the truncation taking effect is not directly
    // constructible through the public API; this test asserts the
    // replay path via recover() on a hand-built log.
    mne::MnemosyneHeap fresh(w.ctx, 16 << 20, 16 << 20, 1);
    const Addr target = fresh.pmalloc(w.ctx, 64);
    // Hand-write: [Update target=77][Commit], publish {segment, seq}
    // in the active-log cell, then recover. Records must carry the
    // published sequence or recovery treats them as stale.
    const Addr log = fresh.logBase(0);
    const std::uint64_t seq = 41;
    const struct { Addr base; std::uint64_t s; } cell{log, seq};
    w.ctx.store(fresh.activeCellOff(0), &cell, sizeof(cell),
                pm::DataClass::TxMeta);
    w.ctx.flush(fresh.activeCellOff(0), sizeof(cell));
    const std::uint64_t newv = 77;
    mne::RedoHeader upd{mne::RedoHeader::kMagic, mne::RedoKind::Update,
                        target, 8, 0, seq};
    upd.checksum = mne::redoCrc(upd, &newv, 8);
    w.ctx.ntStore(log, &upd, sizeof(upd), pm::DataClass::Log);
    w.ctx.ntStore(log + sizeof(upd), &newv, 8, pm::DataClass::Log);
    mne::RedoHeader commit{mne::RedoHeader::kMagic,
                           mne::RedoKind::Commit, 0, 0, 0, seq};
    commit.checksum = mne::redoCrc(commit, nullptr, 0);
    // Records are cache-line aligned: the commit record starts on
    // the next line boundary after the update record.
    w.ctx.ntStore(lineBase(log + sizeof(upd) + 8 + kCacheLineSize - 1),
                  &commit, sizeof(commit), pm::DataClass::Log);
    w.ctx.fence();
    w.pool.crashHard();
    w.ctx.resetPendingState();

    mne::MnemosyneHeap again(16 << 20, 16 << 20, 1);
    again.recover(w.ctx);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(target), 77u);
}

TEST(Mnemosyne, ReadOwnWritesOverlays)
{
    TxWorld w;
    mne::MnemosyneHeap heap(w.ctx, 0, 16 << 20, 2);
    const Addr obj = heap.pmalloc(w.ctx, 64);
    mne::Transaction tx(heap, w.ctx);
    const std::uint64_t a = 5, b = 6;
    tx.update(obj, &a, 8);
    tx.update(obj + 8, &b, 8);
    std::uint64_t two[2];
    tx.read(obj, two, 16);
    EXPECT_EQ(two[0], 5u);
    EXPECT_EQ(two[1], 6u);
    const std::uint64_t a2 = 50;
    tx.update(obj, &a2, 8);
    tx.read(obj, two, 16);
    EXPECT_EQ(two[0], 50u); // newest staged write wins
    tx.commit();
}

TEST(Mnemosyne, AbortFreesTxAllocations)
{
    TxWorld w;
    mne::MnemosyneHeap heap(w.ctx, 0, 16 << 20, 2);
    mne::Transaction tx(heap, w.ctx);
    const Addr a = tx.pmalloc(64);
    ASSERT_NE(a, kNullAddr);
    tx.abort();
    EXPECT_TRUE(heap.allocator().stats().frees >= 1);
}

TEST(Mnemosyne, LogWritesAreNtis)
{
    TxWorld w;
    mne::MnemosyneHeap heap(w.ctx, 0, 16 << 20, 2);
    const Addr obj = heap.pmalloc(w.ctx, 64);
    const auto nt_before = w.tb.counters().pmNtStores;
    mne::Transaction tx(heap, w.ctx);
    const std::uint64_t v = 1;
    tx.update(obj, &v, 8);
    tx.commit();
    EXPECT_GT(w.tb.counters().pmNtStores, nt_before);
}

// ----------------------------------------------------------------- NVML

TEST(Nvml, CommitKeepsSnapshotCleared)
{
    TxWorld w;
    nvml::NvmlPool pool(w.ctx, 0, 32 << 20, 2);
    nvml::TxContext tx(pool, w.ctx);
    const Addr obj = tx.txAlloc(64);
    ASSERT_NE(obj, kNullAddr);
    const std::uint64_t v = 10;
    tx.directStore(obj, &v, 8);
    tx.commit();

    // Value durable, allocator consistent after a crash.
    w.pool.crashHard();
    w.ctx.resetPendingState();
    nvml::NvmlPool again(0, 32 << 20, 2);
    again.recover(w.ctx);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(obj), 10u);
    EXPECT_TRUE(again.allocator().isAllocated(obj));
}

TEST(Nvml, AbortRollsBackInPlaceUpdates)
{
    TxWorld w;
    nvml::NvmlPool pool(w.ctx, 0, 32 << 20, 2);
    Addr obj;
    {
        nvml::TxContext tx(pool, w.ctx);
        obj = tx.txAlloc(64);
        const std::uint64_t v = 10;
        tx.directStore(obj, &v, 8);
        tx.commit();
    }
    {
        nvml::TxContext tx(pool, w.ctx);
        auto *cell = w.pool.at<std::uint64_t>(obj);
        tx.set(*cell, std::uint64_t{999});
        EXPECT_EQ(*cell, 999u); // in place
        tx.abort();
        EXPECT_EQ(*cell, 10u); // restored
    }
}

TEST(Nvml, AbortFreesTxAllocations)
{
    TxWorld w;
    nvml::NvmlPool pool(w.ctx, 0, 32 << 20, 2);
    nvml::TxContext tx(pool, w.ctx);
    const Addr obj = tx.txAlloc(64);
    tx.abort();
    EXPECT_FALSE(pool.allocator().isAllocated(obj));
}

TEST(Nvml, CrashMidTxRollsBackAndFrees)
{
    TxWorld w;
    nvml::NvmlPool pool(w.ctx, 0, 32 << 20, 2);
    Addr obj;
    {
        nvml::TxContext tx(pool, w.ctx);
        obj = tx.txAlloc(64);
        const std::uint64_t v = 10;
        tx.directStore(obj, &v, 8);
        tx.commit();
    }
    Addr leak_candidate = kNullAddr;
    {
        // The crash happens with the tx ACTIVE: a fired crash plan
        // keeps the destructor off the pool (no abort rollback).
        nvml::TxContext tx(pool, w.ctx);
        auto *cell = w.pool.at<std::uint64_t>(obj);
        tx.set(*cell, std::uint64_t{555});
        leak_candidate = tx.txAlloc(128);
        // Everything fenced so far: the undo records, the tx state,
        // the allocator mutations.
        w.pool.crashHard();
        w.ctx.resetPendingState();
        pm::CrashPlan dead;
        dead.fired.store(true);
        w.ctx.setCrashPlan(&dead);
    }
    w.ctx.setCrashPlan(nullptr);
    nvml::NvmlPool again(0, 32 << 20, 2);
    again.recover(w.ctx);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(obj), 10u);
    EXPECT_FALSE(again.allocator().isAllocated(leak_candidate));
    EXPECT_TRUE(again.allocator().isAllocated(obj));
}

TEST(Nvml, UndoUsesCacheableStores)
{
    TxWorld w;
    nvml::NvmlPool pool(w.ctx, 0, 32 << 20, 1);
    nvml::TxContext tx(pool, w.ctx);
    const Addr obj = tx.txAlloc(64);
    const auto nt_before = w.tb.counters().pmNtStores;
    auto *cell = w.pool.at<std::uint64_t>(obj);
    tx.set(*cell, std::uint64_t{5});
    // NVML uses cacheable stores for log and data; no NTIs here.
    EXPECT_EQ(w.tb.counters().pmNtStores, nt_before);
    tx.commit();
}

// ------------------------------------------- adversarial crash sweeps

class TxCrashSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TxCrashSweep, MnemosyneCountersNeverTear)
{
    // Two counters updated in one transaction must never disagree
    // after any crash outcome.
    const std::uint64_t seed = GetParam();
    TxWorld w;
    mne::MnemosyneHeap heap(w.ctx, 0, 16 << 20, 1);
    const Addr obj = heap.pmalloc(w.ctx, 64);
    const std::uint64_t zero = 0;
    w.ctx.store(obj, &zero, 8);
    w.ctx.store(obj + 8, &zero, 8);
    w.ctx.persist(obj, 16);

    Rng rng(seed);
    const int txs = 1 + static_cast<int>(rng.next(8));
    for (int i = 0; i < txs; i++) {
        mne::Transaction tx(heap, w.ctx);
        const std::uint64_t v = i + 1;
        tx.update(obj, &v, 8);
        tx.update(obj + 8, &v, 8);
        tx.commit();
    }
    w.pool.crash(rng, 0.5);
    w.ctx.resetPendingState();
    mne::MnemosyneHeap again(0, 16 << 20, 1);
    again.recover(w.ctx);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(obj),
              *w.pool.at<std::uint64_t>(obj + 8));
    EXPECT_EQ(*w.pool.at<std::uint64_t>(obj),
              static_cast<std::uint64_t>(txs));
}

TEST_P(TxCrashSweep, NvmlPairNeverTears)
{
    const std::uint64_t seed = GetParam();
    TxWorld w;
    nvml::NvmlPool pool(w.ctx, 0, 32 << 20, 1);
    Addr obj;
    {
        nvml::TxContext tx(pool, w.ctx);
        obj = tx.txAlloc(64);
        const std::uint64_t zero = 0;
        tx.directStore(obj, &zero, 8);
        tx.directStore(obj + 8, &zero, 8);
        tx.commit();
    }
    Rng rng(seed);
    const int txs = 1 + static_cast<int>(rng.next(8));
    for (int i = 0; i < txs; i++) {
        nvml::TxContext tx(pool, w.ctx);
        auto *a = w.pool.at<std::uint64_t>(obj);
        auto *b = w.pool.at<std::uint64_t>(obj + 8);
        tx.set(*a, static_cast<std::uint64_t>(i + 1));
        tx.set(*b, static_cast<std::uint64_t>(i + 1));
        tx.commit();
    }
    w.pool.crash(rng, 0.5);
    w.ctx.resetPendingState();
    nvml::NvmlPool again(0, 32 << 20, 1);
    again.recover(w.ctx);
    EXPECT_EQ(*w.pool.at<std::uint64_t>(obj),
              *w.pool.at<std::uint64_t>(obj + 8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxCrashSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

} // namespace
} // namespace whisper

/**
 * @file
 * Crash-recovery fuzzer tests: deterministic case derivation and
 * digests at any job count, the bounded per-layer smoke sweep that
 * rides every ctest run, and the end-to-end proof that a deliberate
 * ordering bug is found, shrunk and rendered replayable.
 */

#include <gtest/gtest.h>

#include "fuzz/crash_fuzz.hh"

namespace whisper
{
namespace
{

fuzz::FuzzConfig
tinyConfig()
{
    fuzz::FuzzConfig config;
    config.opsPerThread = 10;
    config.poolBytes = 24 << 20;
    return config;
}

TEST(CrashFuzz, CaseDerivationIsPure)
{
    const fuzz::FuzzConfig config = tinyConfig();
    const fuzz::FuzzCase a = fuzz::deriveCase("hashmap", 11, 452,
                                              config);
    const fuzz::FuzzCase b = fuzz::deriveCase("hashmap", 11, 452,
                                              config);
    EXPECT_EQ(a.crashAt, b.crashAt);
    EXPECT_EQ(a.crash.seed, b.crash.seed);
    EXPECT_EQ(a.crash.survival, b.crash.survival);
    EXPECT_EQ(a.crash.schedule, b.crash.schedule);
    EXPECT_EQ(a.hard, b.hard);
    EXPECT_LT(a.crashAt, 452u);
    // A different id perturbs the parameters.
    const fuzz::FuzzCase c = fuzz::deriveCase("hashmap", 12, 452,
                                              config);
    EXPECT_NE(a.crash.seed, c.crash.seed);
    EXPECT_NE(a.crash.schedule, c.crash.schedule);
}

TEST(CrashFuzz, CaseReplayIsBitIdentical)
{
    const fuzz::FuzzConfig config = tinyConfig();
    const std::uint64_t total = fuzz::profilePmOps("hashmap", config);
    ASSERT_GT(total, 0u);
    const fuzz::FuzzCase c = fuzz::deriveCase("hashmap", 5, total,
                                              config);
    const fuzz::CaseOutcome first = fuzz::runCase(c, config);
    const fuzz::CaseOutcome second = fuzz::runCase(c, config);
    EXPECT_EQ(first.digest, second.digest);
    EXPECT_EQ(first.fired, second.fired);
    EXPECT_EQ(first.opIndex, second.opIndex);
    EXPECT_EQ(first.survivors, second.survivors);
    EXPECT_EQ(first.imageHash, second.imageHash);
}

TEST(CrashFuzz, MultiThreadReplayIsBitIdentical)
{
    // The tentpole determinism claim: with racing threads pinned to a
    // case's gate schedule, a replay reproduces not just the digest
    // but the exact post-recovery PM image.
    for (const char *app : {"mod-hashmap", "mod-vector"}) {
        fuzz::FuzzConfig config = tinyConfig();
        config.threads = 3;
        const std::uint64_t total = fuzz::profilePmOps(app, config);
        ASSERT_GT(total, 0u) << app;
        const fuzz::FuzzCase c =
            fuzz::deriveCase(app, 9, total, config);
        const fuzz::CaseOutcome first = fuzz::runCase(c, config);
        const fuzz::CaseOutcome second = fuzz::runCase(c, config);
        EXPECT_EQ(first.fired, second.fired) << app;
        EXPECT_EQ(first.opIndex, second.opIndex) << app;
        EXPECT_EQ(first.survivors, second.survivors) << app;
        EXPECT_EQ(first.imageHash, second.imageHash) << app;
        EXPECT_EQ(first.digest, second.digest) << app;
        // A different schedule is a genuinely different interleaving:
        // the same crash point usually cuts a different image. (Not
        // asserted — schedules may coincide — but the replay command
        // must pin the one that ran.)
        EXPECT_NE(
            fuzz::replayCommand(c, first.survivors, config)
                .find("--schedule"),
            std::string::npos)
            << app;
    }
}

TEST(CrashFuzz, MultiThreadModSweepHoldsInvariants)
{
    // Concurrent MOD crash fuzzing: racing writers, a seeded gate
    // schedule per case, and the same zero-violation bar as the
    // single-threaded sweep.
    fuzz::SweepOptions options;
    options.apps = {"mod-hashmap", "mod-vector"};
    options.cases = 48;
    options.config = tinyConfig();
    options.config.threads = 3;
    options.maxReproducers = 1;

    for (const auto &report : fuzz::sweep(options)) {
        EXPECT_EQ(report.violations, 0u)
            << report.app << ": "
            << (report.reproducers.empty()
                    ? "(no reproducer)"
                    : report.reproducers[0].why + " => " +
                          report.reproducers[0].command);
        EXPECT_EQ(report.casesRun, options.cases);
        EXPECT_GT(report.casesFired, 0u);
        EXPECT_GT(report.totalPmOps, 0u);
    }
}

TEST(CrashFuzz, SweepDigestIdenticalAtAnyJobs)
{
    fuzz::SweepOptions options;
    options.apps = {"hashmap", "echo"};
    options.cases = 12;
    options.config = tinyConfig();
    options.shrinkViolations = false;

    options.jobs = 1;
    const auto sequential = fuzz::sweep(options);
    options.jobs = 4;
    const auto parallel = fuzz::sweep(options);

    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); i++) {
        EXPECT_EQ(sequential[i].digest, parallel[i].digest)
            << sequential[i].app;
        EXPECT_EQ(sequential[i].violations, parallel[i].violations);
        EXPECT_EQ(sequential[i].casesFired, parallel[i].casesFired);
    }
}

TEST(CrashFuzz, SmokeSweepEachLayerHoldsInvariants)
{
    // The bounded smoke sweep the issue wires into ctest: one
    // application per access layer (native, NVML, Mnemosyne, PMFS),
    // a few hundred crash points x seeds x survival rates each.
    fuzz::SweepOptions options;
    options.apps = {"echo", "hashmap", "vacation", "nfs"};
    options.cases = 200;
    options.config = tinyConfig();
    options.maxReproducers = 1;

    for (const auto &report : fuzz::sweep(options)) {
        EXPECT_EQ(report.violations, 0u)
            << report.app << ": "
            << (report.reproducers.empty()
                    ? "(no reproducer)"
                    : report.reproducers[0].why + " => " +
                          report.reproducers[0].command);
        EXPECT_EQ(report.casesRun, options.cases);
        EXPECT_GT(report.casesFired, 0u);
        EXPECT_GT(report.totalPmOps, 0u);
    }
}

TEST(CrashFuzz, ModSmokeSweepHoldsInvariants)
{
    // The MOD layer's recovery contract under fuzzing: every root
    // swap commits a fully-persisted structure and the garbage lanes
    // never reclaim anything a durable root still reaches. At least
    // 128 cases per MOD application, zero violations.
    fuzz::SweepOptions options;
    options.apps = {"mod-hashmap", "mod-vector"};
    options.cases = 128;
    options.config = tinyConfig();
    options.maxReproducers = 1;

    for (const auto &report : fuzz::sweep(options)) {
        EXPECT_EQ(report.violations, 0u)
            << report.app << ": "
            << (report.reproducers.empty()
                    ? "(no reproducer)"
                    : report.reproducers[0].why + " => " +
                          report.reproducers[0].command);
        EXPECT_EQ(report.casesRun, options.cases);
        EXPECT_GT(report.casesFired, 0u);
        EXPECT_GT(report.totalPmOps, 0u);
    }
}

TEST(CrashFuzz, FindsAndShrinksDeliberateViolation)
{
    fuzz::registerFaultyApp();
    fuzz::SweepOptions options;
    options.apps = {"faulty"};
    options.cases = 32;
    options.config.opsPerThread = 8;
    options.config.poolBytes = 1 << 20;
    options.maxReproducers = 1;

    const auto reports = fuzz::sweep(options);
    ASSERT_EQ(reports.size(), 1u);
    const auto &report = reports[0];
    EXPECT_GT(report.violations, 0u);
    ASSERT_FALSE(report.reproducers.empty());

    const auto &rep = report.reproducers[0];
    // The shrinker may only move the crash point later, closer to
    // the bug, and for this bug the empty survivor set suffices.
    EXPECT_TRUE(rep.survivors.empty());
    EXPECT_NE(rep.command.find("--replay faulty:"),
              std::string::npos);
    EXPECT_NE(rep.command.find("--survivors none"),
              std::string::npos);

    // The reproducer replays: the shrunk case still violates.
    const fuzz::CaseOutcome replay =
        fuzz::runCase(rep.c, options.config, &rep.survivors);
    EXPECT_FALSE(replay.ok);
    EXPECT_EQ(replay.why, rep.why);
}

} // namespace
} // namespace whisper

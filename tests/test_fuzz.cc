/**
 * @file
 * Crash-recovery fuzzer tests: deterministic case derivation and
 * digests at any job count, the bounded per-layer smoke sweep that
 * rides every ctest run, and the end-to-end proof that a deliberate
 * ordering bug is found, shrunk and rendered replayable.
 */

#include <gtest/gtest.h>

#include "fuzz/crash_fuzz.hh"

namespace whisper
{
namespace
{

fuzz::FuzzConfig
tinyConfig()
{
    fuzz::FuzzConfig config;
    config.opsPerThread = 10;
    config.poolBytes = 24 << 20;
    return config;
}

TEST(CrashFuzz, CaseDerivationIsPure)
{
    const fuzz::FuzzConfig config = tinyConfig();
    const fuzz::FuzzCase a = fuzz::deriveCase("hashmap", 11, 452,
                                              config);
    const fuzz::FuzzCase b = fuzz::deriveCase("hashmap", 11, 452,
                                              config);
    EXPECT_EQ(a.crashAt, b.crashAt);
    EXPECT_EQ(a.crash.seed, b.crash.seed);
    EXPECT_EQ(a.crash.survival, b.crash.survival);
    EXPECT_EQ(a.crash.schedule, b.crash.schedule);
    EXPECT_EQ(a.hard, b.hard);
    EXPECT_LT(a.crashAt, 452u);
    // A different id perturbs the parameters.
    const fuzz::FuzzCase c = fuzz::deriveCase("hashmap", 12, 452,
                                              config);
    EXPECT_NE(a.crash.seed, c.crash.seed);
    EXPECT_NE(a.crash.schedule, c.crash.schedule);
}

TEST(CrashFuzz, CaseReplayIsBitIdentical)
{
    const fuzz::FuzzConfig config = tinyConfig();
    const std::uint64_t total = fuzz::profilePmOps("hashmap", config);
    ASSERT_GT(total, 0u);
    const fuzz::FuzzCase c = fuzz::deriveCase("hashmap", 5, total,
                                              config);
    const fuzz::CaseOutcome first = fuzz::runCase(c, config);
    const fuzz::CaseOutcome second = fuzz::runCase(c, config);
    EXPECT_EQ(first.digest, second.digest);
    EXPECT_EQ(first.fired, second.fired);
    EXPECT_EQ(first.opIndex, second.opIndex);
    EXPECT_EQ(first.survivors, second.survivors);
    EXPECT_EQ(first.imageHash, second.imageHash);
}

TEST(CrashFuzz, MultiThreadReplayIsBitIdentical)
{
    // The tentpole determinism claim: with racing threads pinned to a
    // case's gate schedule, a replay reproduces not just the digest
    // but the exact post-recovery PM image.
    for (const char *app : {"mod-hashmap", "mod-vector"}) {
        fuzz::FuzzConfig config = tinyConfig();
        config.threads = 3;
        const std::uint64_t total = fuzz::profilePmOps(app, config);
        ASSERT_GT(total, 0u) << app;
        const fuzz::FuzzCase c =
            fuzz::deriveCase(app, 9, total, config);
        const fuzz::CaseOutcome first = fuzz::runCase(c, config);
        const fuzz::CaseOutcome second = fuzz::runCase(c, config);
        EXPECT_EQ(first.fired, second.fired) << app;
        EXPECT_EQ(first.opIndex, second.opIndex) << app;
        EXPECT_EQ(first.survivors, second.survivors) << app;
        EXPECT_EQ(first.imageHash, second.imageHash) << app;
        EXPECT_EQ(first.digest, second.digest) << app;
        // A different schedule is a genuinely different interleaving:
        // the same crash point usually cuts a different image. (Not
        // asserted — schedules may coincide — but the replay command
        // must pin the one that ran.)
        EXPECT_NE(
            fuzz::replayCommand(c, first.survivors, config)
                .find("--schedule"),
            std::string::npos)
            << app;
    }
}

TEST(CrashFuzz, MultiThreadModSweepHoldsInvariants)
{
    // Concurrent MOD crash fuzzing: racing writers, a seeded gate
    // schedule per case, and the same zero-violation bar as the
    // single-threaded sweep.
    fuzz::SweepOptions options;
    options.apps = {"mod-hashmap", "mod-vector"};
    options.cases = 48;
    options.config = tinyConfig();
    options.config.threads = 3;
    options.maxReproducers = 1;

    for (const auto &report : fuzz::sweep(options)) {
        EXPECT_EQ(report.violations, 0u)
            << report.app << ": "
            << (report.reproducers.empty()
                    ? "(no reproducer)"
                    : report.reproducers[0].why + " => " +
                          report.reproducers[0].command);
        EXPECT_EQ(report.casesRun, options.cases);
        EXPECT_GT(report.casesFired, 0u);
        EXPECT_GT(report.totalPmOps, 0u);
    }
}

TEST(CrashFuzz, SweepDigestIdenticalAtAnyJobs)
{
    fuzz::SweepOptions options;
    options.apps = {"hashmap", "echo"};
    options.cases = 12;
    options.config = tinyConfig();
    options.shrinkViolations = false;

    options.jobs = 1;
    const auto sequential = fuzz::sweep(options);
    options.jobs = 4;
    const auto parallel = fuzz::sweep(options);

    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); i++) {
        EXPECT_EQ(sequential[i].digest, parallel[i].digest)
            << sequential[i].app;
        EXPECT_EQ(sequential[i].violations, parallel[i].violations);
        EXPECT_EQ(sequential[i].casesFired, parallel[i].casesFired);
    }
}

TEST(CrashFuzz, SmokeSweepEachLayerHoldsInvariants)
{
    // The bounded smoke sweep the issue wires into ctest: one
    // application per access layer (native, NVML, Mnemosyne, PMFS),
    // a few hundred crash points x seeds x survival rates each.
    fuzz::SweepOptions options;
    options.apps = {"echo", "hashmap", "vacation", "nfs"};
    options.cases = 200;
    options.config = tinyConfig();
    options.maxReproducers = 1;

    for (const auto &report : fuzz::sweep(options)) {
        EXPECT_EQ(report.violations, 0u)
            << report.app << ": "
            << (report.reproducers.empty()
                    ? "(no reproducer)"
                    : report.reproducers[0].why + " => " +
                          report.reproducers[0].command);
        EXPECT_EQ(report.casesRun, options.cases);
        EXPECT_GT(report.casesFired, 0u);
        EXPECT_GT(report.totalPmOps, 0u);
    }
}

TEST(CrashFuzz, ModSmokeSweepHoldsInvariants)
{
    // The MOD layer's recovery contract under fuzzing: every root
    // swap commits a fully-persisted structure and the garbage lanes
    // never reclaim anything a durable root still reaches. At least
    // 128 cases per MOD application, zero violations.
    fuzz::SweepOptions options;
    options.apps = {"mod-hashmap", "mod-vector"};
    options.cases = 128;
    options.config = tinyConfig();
    options.maxReproducers = 1;

    for (const auto &report : fuzz::sweep(options)) {
        EXPECT_EQ(report.violations, 0u)
            << report.app << ": "
            << (report.reproducers.empty()
                    ? "(no reproducer)"
                    : report.reproducers[0].why + " => " +
                          report.reproducers[0].command);
        EXPECT_EQ(report.casesRun, options.cases);
        EXPECT_GT(report.casesFired, 0u);
        EXPECT_GT(report.totalPmOps, 0u);
    }
}

TEST(CrashFuzz, FindsAndShrinksDeliberateViolation)
{
    fuzz::registerFaultyApp();
    fuzz::SweepOptions options;
    options.apps = {"faulty"};
    options.cases = 32;
    options.config.opsPerThread = 8;
    options.config.poolBytes = 1 << 20;
    options.maxReproducers = 1;

    const auto reports = fuzz::sweep(options);
    ASSERT_EQ(reports.size(), 1u);
    const auto &report = reports[0];
    EXPECT_GT(report.violations, 0u);
    ASSERT_FALSE(report.reproducers.empty());

    const auto &rep = report.reproducers[0];
    // The shrinker may only move the crash point later, closer to
    // the bug, and for this bug the empty survivor set suffices.
    EXPECT_TRUE(rep.survivors.empty());
    EXPECT_NE(rep.command.find("--replay faulty:"),
              std::string::npos);
    EXPECT_NE(rep.command.find("--survivors none"),
              std::string::npos);

    // The reproducer replays: the shrunk case still violates.
    const fuzz::CaseOutcome replay =
        fuzz::runCase(rep.c, options.config, &rep.survivors);
    EXPECT_FALSE(replay.ok);
    EXPECT_EQ(replay.why, rep.why);
}

TEST(CrashFuzz, ShrinkIsDeterministic)
{
    // Same seed + same violation => byte-identical reproducer. The
    // ddmin pass and the crash-point probe draw only on the case's
    // seeds, so a reproducer pasted into a bug report stays valid.
    fuzz::registerFaultyApp();
    fuzz::FuzzConfig config;
    config.opsPerThread = 8;
    config.poolBytes = 1 << 20;

    const std::uint64_t total = fuzz::profilePmOps("faulty", config);
    ASSERT_GT(total, 0u);
    fuzz::FuzzCase failing;
    fuzz::CaseOutcome outcome;
    bool found = false;
    for (std::uint64_t id = 0; id < 64 && !found; id++) {
        const fuzz::FuzzCase c =
            fuzz::deriveCase("faulty", id, total, config);
        const fuzz::CaseOutcome out = fuzz::runCase(c, config);
        if (!out.ok) {
            failing = c;
            outcome = out;
            found = true;
        }
    }
    ASSERT_TRUE(found) << "faulty app never violated in 64 cases";

    const fuzz::Reproducer a =
        fuzz::shrink(failing, outcome, config);
    const fuzz::Reproducer b =
        fuzz::shrink(failing, outcome, config);
    EXPECT_EQ(a.c.crashAt, b.c.crashAt);
    EXPECT_EQ(a.survivors, b.survivors);
    EXPECT_EQ(a.why, b.why);
    EXPECT_EQ(a.command, b.command);
    // And the shrunk case still reproduces its own `why`.
    const fuzz::CaseOutcome replay =
        fuzz::runCase(a.c, config, &a.survivors);
    EXPECT_FALSE(replay.ok);
    EXPECT_EQ(replay.why, a.why);
}

TEST(CrashFuzz, FaultCaseReplayIsBitIdentical)
{
    // The fault dimension folds into the same determinism contract:
    // a case that tore and poisoned lines replays to the same digest
    // and post-recovery image hash, and its replay command pins the
    // fault plan.
    fuzz::FuzzConfig config = tinyConfig();
    config.faults = true;
    const std::uint64_t total = fuzz::profilePmOps("echo", config);
    ASSERT_GT(total, 0u);

    bool found = false;
    for (std::uint64_t id = 0; id < 64 && !found; id++) {
        const fuzz::FuzzCase c =
            fuzz::deriveCase("echo", id, total, config);
        if (c.fault.none())
            continue;
        found = true;
        const fuzz::CaseOutcome first = fuzz::runCase(c, config);
        const fuzz::CaseOutcome second = fuzz::runCase(c, config);
        EXPECT_EQ(first.digest, second.digest);
        EXPECT_EQ(first.imageHash, second.imageHash);
        EXPECT_EQ(first.degraded, second.degraded);
        EXPECT_EQ(first.linesTorn, second.linesTorn);
        EXPECT_EQ(first.linesPoisoned, second.linesPoisoned);
        EXPECT_EQ(first.survivors, second.survivors);
        EXPECT_NE(fuzz::replayCommand(c, first.survivors, config)
                      .find("--fault-plan"),
                  std::string::npos);
    }
    ASSERT_TRUE(found) << "no derived case carried a fault plan";
}

TEST(CrashFuzz, FaultSweepEachLayerScrubsOrDegrades)
{
    // Bounded fault smoke sweep, one application per access layer:
    // media loss must end scrubbed or named Degraded — never a
    // violation, never a recovery-path panic.
    fuzz::SweepOptions options;
    options.apps = {"echo", "hashmap", "vacation", "nfs",
                    "mod-hashmap"};
    options.cases = 48;
    options.config = tinyConfig();
    options.config.faults = true;
    options.maxReproducers = 1;

    std::uint64_t degraded_total = 0;
    for (const auto &report : fuzz::sweep(options)) {
        EXPECT_EQ(report.violations, 0u)
            << report.app << ": "
            << (report.reproducers.empty()
                    ? "(no reproducer)"
                    : report.reproducers[0].why + " => " +
                          report.reproducers[0].command);
        EXPECT_EQ(report.casesRun, options.cases);
        degraded_total += report.casesDegraded;
    }
    // The fault grids guarantee poisoned cases in every sweep; at
    // least some must have surfaced as named, tolerated degradation.
    EXPECT_GT(degraded_total, 0u);
}

TEST(CrashFuzz, SweepKeepsPerCaseReportsForJsonStream)
{
    // --json consumes SweepOptions::keepReports: one VerifyReport per
    // case in id order, each of which must round-trip through the
    // line-JSON codec (the CLI emits exactly toJson(report) lines).
    fuzz::SweepOptions options;
    options.apps = {"echo"};
    options.cases = 24;
    options.config = tinyConfig();
    options.config.faults = true;
    options.keepReports = true;
    options.maxReproducers = 1;

    const auto reports = fuzz::sweep(options);
    ASSERT_EQ(reports.size(), 1u);
    const auto &report = reports[0];
    ASSERT_EQ(report.caseReports.size(), options.cases);
    std::uint64_t degraded_seen = 0;
    for (const auto &rep : report.caseReports) {
        core::VerifyReport back;
        const std::string line = core::toJson(rep);
        ASSERT_TRUE(core::fromJson(line, back)) << line;
        EXPECT_EQ(core::toJson(back), line);
        if (back.degraded())
            degraded_seen++;
    }
    EXPECT_EQ(degraded_seen, report.casesDegraded);
}

} // namespace
} // namespace whisper

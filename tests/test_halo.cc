/**
 * @file
 * Hybrid (Halo) layer tests: segment-allocator edge cases (per-thread
 * exhaustion, the one-fence-per-seal golden), the DRAM directory's
 * fingerprint and doubling paths (including doubling under concurrent
 * readers), scan-rebuilt recovery semantics (last-writer-wins,
 * tombstones, job-count-invariant rebuild digests), the §12 golden
 * regression pinning halo amplification strictly below the MOD band,
 * and the multi-threaded crash+fault fuzz smoke.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "analysis/access_mix.hh"
#include "core/harness.hh"
#include "core/runtime.hh"
#include "fuzz/crash_fuzz.hh"
#include "halo/halo_directory.hh"
#include "halo/halo_store.hh"

namespace whisper
{
namespace
{

using core::AppConfig;
using halo::HaloDirectory;
using halo::HaloStore;

constexpr std::size_t kPool = 1 << 20;

HaloStore::Config
storeConfig(std::size_t bytes, unsigned threads)
{
    HaloStore::Config config;
    config.base = 0;
    config.bytes = bytes;
    config.threads = threads;
    return config;
}

AppConfig
appConfig()
{
    AppConfig config;
    config.threads = 4;
    config.opsPerThread = 120;
    config.poolBytes = 192 << 20;
    config.seed = 7;
    return config;
}

TEST(HaloAllocator, ExhaustionIsPerThreadNotGlobal)
{
    // Two threads, two segments each. Thread 0 exhausting its own
    // range must not consume (or corrupt) thread 1's.
    core::Runtime rt(kPool, 2);
    HaloStore store(storeConfig(4 * halo::kSegmentBytes, 2));
    ASSERT_EQ(store.allocator().segmentsPerThread(), 2u);

    const std::uint64_t cap = 2 * halo::kRecordsPerSegment;
    std::uint64_t vals[halo::kValWords] = {1, 2, 3};
    for (std::uint64_t i = 0; i < cap; i++) {
        vals[0] = i;
        ASSERT_TRUE(store.put(rt.ctx(0), 0,
                              HaloStore::makeKey(0, i), vals))
            << "record " << i;
    }
    EXPECT_FALSE(store.put(rt.ctx(0), 0, HaloStore::makeKey(0, cap),
                           vals))
        << "thread 0's range is full";

    // Thread 1's range is untouched by the exhaustion.
    EXPECT_TRUE(store.put(rt.ctx(1), 1, HaloStore::makeKey(1, 0),
                          vals));
    store.threadExit(rt.ctx(0), 0);
    store.threadExit(rt.ctx(1), 1);

    // Earlier data survives the failed append.
    std::uint64_t out[halo::kValWords] = {};
    ASSERT_TRUE(store.get(rt.ctx(0), HaloStore::makeKey(0, cap - 1),
                          out));
    EXPECT_EQ(out[0], cap - 1);
}

TEST(HaloAllocator, SealFenceCountGolden)
{
    // The layer's whole durability bill: one fence per segment seal
    // plus one per explicit durability point — nothing else in the
    // trace fences at all.
    core::Runtime rt(kPool, 1);
    pm::PmContext &ctx = rt.ctx(0);
    HaloStore store(storeConfig(4 * halo::kSegmentBytes, 1));

    std::uint64_t vals[halo::kValWords] = {0, 0, 0};
    for (std::uint64_t i = 0; i < halo::kRecordsPerSegment; i++)
        ASSERT_TRUE(store.put(ctx, 0, HaloStore::makeKey(0, i),
                              vals));
    EXPECT_EQ(store.allocator().sealFences(), 0u)
        << "filling one segment exactly must not fence";
    EXPECT_EQ(store.allocator().segmentsOpened(), 1u);

    store.durabilityPoint(ctx, 0);
    EXPECT_EQ(store.allocator().sealFences(), 1u);

    // The next append finds the active segment full: one auto-seal,
    // then the second segment opens.
    ASSERT_TRUE(store.put(ctx, 0, HaloStore::makeKey(0, 1000), vals));
    EXPECT_EQ(store.allocator().sealFences(), 2u);
    EXPECT_EQ(store.allocator().segmentsOpened(), 2u);

    store.threadExit(ctx, 0);
    EXPECT_EQ(store.allocator().sealFences(), 3u);
    EXPECT_EQ(store.allocator().recordsAppended(),
              halo::kRecordsPerSegment + 1);
    // Trace-level cross-check: every fence in the trace is a seal.
    EXPECT_EQ(rt.traces().totalCounters().fences,
              store.allocator().sealFences());
}

halo::HaloSegmentAllocator::Config
spreadConfig(halo::HaloSegmentAllocator::Placement placement)
{
    // 64 segments over 4 DIMMs at 64 KiB interleave: each chunk holds
    // 16 segments, so two threads' sequential halves each sit on two
    // DIMMs while DimmSpread cycles all four.
    halo::HaloSegmentAllocator::Config config;
    config.base = 0;
    config.bytes = 64 * halo::kSegmentBytes;
    config.threads = 2;
    config.placement = placement;
    config.dimms = DimmConfig{4, 1024};
    return config;
}

/** Open @p segments segments for @p tid by appending records. */
void
openSegments(core::Runtime &rt, halo::HaloSegmentAllocator &alloc,
             ThreadId tid, std::uint64_t segments)
{
    for (std::uint64_t i = 0;
         i < segments * halo::kRecordsPerSegment; i++) {
        bool sealed = false;
        ASSERT_NE(alloc.append(rt.ctx(tid), tid, i, sealed),
                  kNullAddr);
    }
}

TEST(HaloDimmSpread, SequentialPlacementUnchanged)
{
    const auto config = spreadConfig(
        halo::HaloSegmentAllocator::Placement::Sequential);
    halo::HaloSegmentAllocator alloc(config);
    ASSERT_EQ(alloc.segmentsPerThread(), 32u);
    for (std::uint64_t seg = 0; seg < alloc.segmentCount(); seg++)
        EXPECT_EQ(alloc.ownerOf(seg), seg / 32);
}

TEST(HaloDimmSpread, DealsSegmentsAcrossDimms)
{
    core::Runtime rt(kPool, 2);
    const auto config = spreadConfig(
        halo::HaloSegmentAllocator::Placement::DimmSpread);
    halo::HaloSegmentAllocator alloc(config);

    // Ownership is still an even partition.
    std::array<std::uint64_t, 2> owned{};
    for (std::uint64_t seg = 0; seg < alloc.segmentCount(); seg++)
        owned[alloc.ownerOf(seg)]++;
    EXPECT_EQ(owned[0], 32u);
    EXPECT_EQ(owned[1], 32u);

    // A thread's first four segments land on four distinct DIMMs.
    openSegments(rt, alloc, 0, 4);
    std::set<unsigned> dimms_hit;
    for (std::uint64_t seg = 0; seg < alloc.segmentCount(); seg++) {
        if (alloc.segmentUsed(seg)) {
            EXPECT_EQ(alloc.ownerOf(seg), 0u);
            dimms_hit.insert(alloc.homeDimm(seg));
        }
    }
    EXPECT_EQ(dimms_hit.size(), 4u);
}

TEST(HaloDimmSpread, DimmUsageBalancedVsSequential)
{
    core::Runtime rt_seq(kPool, 2), rt_spread(kPool, 2);
    halo::HaloSegmentAllocator seq(spreadConfig(
        halo::HaloSegmentAllocator::Placement::Sequential));
    halo::HaloSegmentAllocator spread(spreadConfig(
        halo::HaloSegmentAllocator::Placement::DimmSpread));
    for (ThreadId tid = 0; tid < 2; tid++) {
        openSegments(rt_seq, seq, tid, 8);
        openSegments(rt_spread, spread, tid, 8);
    }
    // Sequential parks each thread inside one 16-segment chunk...
    EXPECT_EQ(seq.dimmUsage(), (std::vector<std::uint64_t>{8, 0, 8, 0}));
    // ...DimmSpread cycles every DIMM per thread.
    EXPECT_EQ(spread.dimmUsage(),
              (std::vector<std::uint64_t>{4, 4, 4, 4}));
}

TEST(HaloDimmSpread, ResetFromScanResumesAfterUsed)
{
    core::Runtime rt(kPool, 2);
    const auto config = spreadConfig(
        halo::HaloSegmentAllocator::Placement::DimmSpread);
    halo::HaloSegmentAllocator alloc(config);
    openSegments(rt, alloc, 0, 3);

    std::vector<bool> used(alloc.segmentCount());
    std::set<std::uint64_t> before;
    for (std::uint64_t seg = 0; seg < alloc.segmentCount(); seg++) {
        used[seg] = alloc.segmentUsed(seg);
        if (used[seg])
            before.insert(seg);
    }
    ASSERT_EQ(before.size(), 3u);

    halo::HaloSegmentAllocator recovered(config);
    recovered.resetFromScan(used);
    bool sealed = false;
    const Addr slot = recovered.append(rt.ctx(0), 0, 99, sealed);
    ASSERT_NE(slot, kNullAddr);
    const std::uint64_t opened = recovered.segmentOf(slot);
    EXPECT_EQ(recovered.ownerOf(opened), 0u);
    EXPECT_FALSE(before.count(opened))
        << "recovery must not reopen a used segment";
}

TEST(HaloDirectory, FingerprintFalseHitRejectedByKeyCompare)
{
    HaloDirectory dir;
    const std::uint64_t a = 12345;
    // Find a key that shares a's fingerprint AND its bucket (the
    // fingerprint is the hash's top byte, the bucket index its low
    // bits, so collisions are ~1 in 2^8 * 2^depth — brute force one).
    std::uint64_t b = 0;
    const std::uint64_t mask =
        (std::uint64_t(1) << dir.globalDepth()) - 1;
    for (std::uint64_t k = a + 1;; k++) {
        if (HaloDirectory::fingerprintOf(k) ==
                HaloDirectory::fingerprintOf(a) &&
            (HaloDirectory::hashKey(k) & mask) ==
                (HaloDirectory::hashKey(a) & mask)) {
            b = k;
            break;
        }
    }

    dir.upsert(a, 64);
    Addr addr = kNullAddr;
    EXPECT_FALSE(dir.lookup(b, addr))
        << "fingerprint collision must not surface the wrong key";
    EXPECT_GE(dir.falseFingerprintHits(), 1u)
        << "the collision exercised the false-positive path";

    dir.upsert(b, 128);
    ASSERT_TRUE(dir.lookup(a, addr));
    EXPECT_EQ(addr, 64u);
    ASSERT_TRUE(dir.lookup(b, addr));
    EXPECT_EQ(addr, 128u);
}

TEST(HaloDirectory, DoublingPreservesEveryEntry)
{
    HaloDirectory dir;
    constexpr std::uint64_t kKeys = 4000;
    for (std::uint64_t k = 0; k < kKeys; k++)
        dir.upsert(k, k + 1);
    EXPECT_EQ(dir.size(), kKeys);
    EXPECT_GT(dir.doubles(), 0u);
    EXPECT_GT(dir.splits(), 0u);
    for (std::uint64_t k = 0; k < kKeys; k++) {
        Addr addr = kNullAddr;
        ASSERT_TRUE(dir.lookup(k, addr)) << "key " << k;
        EXPECT_EQ(addr, k + 1);
    }
}

TEST(HaloDirectory, ReadersStayConsistentThroughDoubling)
{
    // One writer (the partition owner) inserting enough keys to
    // double the directory several times; racing readers must always
    // see a consistent directory: every published key resolves to its
    // exact address, never a garbage hit.
    HaloDirectory dir;
    constexpr std::uint64_t kKeys = 20000;
    std::atomic<std::uint64_t> published{0};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> wrong{0};

    std::vector<std::thread> readers;
    for (int r = 0; r < 3; r++) {
        readers.emplace_back([&] {
            std::uint64_t k = 0;
            while (!stop.load(std::memory_order_acquire)) {
                const std::uint64_t limit =
                    published.load(std::memory_order_acquire);
                if (limit == 0)
                    continue;
                k = (k + 1) % limit;
                Addr addr = kNullAddr;
                if (!dir.lookup(k, addr))
                    misses.fetch_add(1);
                else if (addr != k + 1)
                    wrong.fetch_add(1);
            }
        });
    }
    for (std::uint64_t k = 0; k < kKeys; k++) {
        dir.upsert(k, k + 1);
        published.store(k + 1, std::memory_order_release);
    }
    stop.store(true, std::memory_order_release);
    for (std::thread &t : readers)
        t.join();

    EXPECT_EQ(misses.load(), 0u)
        << "a published key vanished mid-double";
    EXPECT_EQ(wrong.load(), 0u) << "a lookup surfaced a wrong address";
    EXPECT_GT(dir.doubles(), 2u) << "the run must actually double";
}

TEST(HaloStore, RecoveryIsLastWriterWinsWithTombstones)
{
    core::Runtime rt(kPool, 1);
    pm::PmContext &ctx = rt.ctx(0);
    HaloStore store(storeConfig(8 * halo::kSegmentBytes, 1));

    const std::uint64_t k1 = HaloStore::makeKey(0, 1);
    const std::uint64_t k2 = HaloStore::makeKey(0, 2);
    std::uint64_t vals[halo::kValWords] = {10, 11, 12};
    ASSERT_TRUE(store.put(ctx, 0, k1, vals));
    vals[0] = 20;
    ASSERT_TRUE(store.put(ctx, 0, k1, vals)); // overwrite
    ASSERT_TRUE(store.put(ctx, 0, k2, vals));
    ASSERT_TRUE(store.remove(ctx, 0, k2));    // tombstone
    store.threadExit(ctx, 0);

    store.recoverScan(rt.pool(), 1);

    std::uint64_t out[halo::kValWords] = {};
    ASSERT_TRUE(store.get(ctx, k1, out));
    EXPECT_EQ(out[0], 20u) << "the later write must win";
    EXPECT_FALSE(store.get(ctx, k2, out))
        << "the tombstone must be honored";
    EXPECT_EQ(store.recoveredTombstones(0).count(k2), 1u);
    EXPECT_EQ(store.maxRecoveredCounter(0), 4u);
    EXPECT_GT(store.nextCounter(0), store.maxRecoveredCounter(0));
}

TEST(HaloStore, RebuildDigestIdenticalAtAnyJobCount)
{
    // The recovery scan shards the segment space across a thread
    // pool; the rebuilt state (and its digest) must be bit-identical
    // whether one worker scans or eight do.
    core::Runtime rt(4 << 20, 4);
    HaloStore store(storeConfig(2 << 20, 4));
    for (unsigned t = 0; t < 4; t++) {
        pm::PmContext &ctx = rt.ctx(t);
        const ThreadId tid = static_cast<ThreadId>(t);
        std::uint64_t vals[halo::kValWords] = {t, 0, 0};
        for (std::uint64_t i = 0; i < 200; i++) {
            vals[1] = i;
            ASSERT_TRUE(store.put(ctx, tid,
                                  HaloStore::makeKey(tid, i % 90),
                                  vals));
            if (i % 7 == 0) {
                ASSERT_TRUE(store.remove(
                    ctx, tid, HaloStore::makeKey(tid, i % 90)));
            }
            if (i % 16 == 15)
                store.durabilityPoint(ctx, tid);
        }
        store.threadExit(ctx, tid);
    }

    auto collect = [&] {
        std::vector<std::pair<std::uint64_t, Addr>> entries;
        store.forEachIndexed([&](std::uint64_t key, Addr addr) {
            entries.emplace_back(key, addr);
        });
        std::sort(entries.begin(), entries.end());
        return entries;
    };

    store.recoverScan(rt.pool(), 1);
    const std::uint64_t sequential = store.rebuildDigest();
    const auto seq_entries = collect();
    ASSERT_NE(sequential, 0u);
    ASSERT_FALSE(seq_entries.empty());

    store.recoverScan(rt.pool(), 8);
    EXPECT_EQ(store.rebuildDigest(), sequential);
    EXPECT_EQ(collect(), seq_entries);

    store.recoverScan(rt.pool(), 0); // hardware concurrency
    EXPECT_EQ(store.rebuildDigest(), sequential);
}

TEST(HaloGolden, AmplificationStrictlyBelowModBand)
{
    // The tentpole comparison: with no PM metadata beyond 16 header
    // bytes per record and one advisory line per segment, halo must
    // post the lowest write amplification of any access layer —
    // strictly below MOD's 1.2-1.6x, which itself sits below the
    // logging libraries (test_mod.cc pins that ordering).
    const AppConfig config = appConfig();
    const double halo_amp = analysis::computeAmplification(
        core::runApp("halo-hashmap", config).runtime->traces())
                                .ratio();
    const double mod_map = analysis::computeAmplification(
        core::runApp("mod-hashmap", config).runtime->traces())
                               .ratio();

    EXPECT_GT(halo_amp, 0.0);
    EXPECT_LT(halo_amp, mod_map)
        << "halo must beat the MOD hashmap outright";
    EXPECT_LT(halo_amp, 1.2)
        << "halo must sit strictly below the MOD band floor";
}

TEST(HaloFuzz, MultiThreadReplayIsBitIdentical)
{
    // Regression for the seal-promotion race: the batched-commit
    // oracle must key off the fence's own retired status, never a
    // later crashInjected() read — otherwise a non-firing thread's
    // promotion races with the firing thread and per-case digests
    // flip under CPU contention.
    fuzz::FuzzConfig config;
    config.opsPerThread = 10;
    config.poolBytes = 24 << 20;
    config.threads = 3;
    config.faults = true;
    const std::uint64_t total =
        fuzz::profilePmOps("halo-hashmap", config);
    ASSERT_GT(total, 0u);
    for (const std::uint64_t id : {3u, 9u, 17u}) {
        const fuzz::FuzzCase c =
            fuzz::deriveCase("halo-hashmap", id, total, config);
        const fuzz::CaseOutcome first = fuzz::runCase(c, config);
        const fuzz::CaseOutcome second = fuzz::runCase(c, config);
        EXPECT_EQ(first.fired, second.fired) << "case " << id;
        EXPECT_EQ(first.opIndex, second.opIndex) << "case " << id;
        EXPECT_EQ(first.survivors, second.survivors) << "case " << id;
        EXPECT_EQ(first.imageHash, second.imageHash) << "case " << id;
        EXPECT_EQ(first.transientFaults, second.transientFaults)
            << "case " << id;
        EXPECT_EQ(first.digest, second.digest) << "case " << id;
    }
}

TEST(HaloFuzz, MultiThreadFaultSweepHoldsInvariants)
{
    // The new recovery paradigm under the full adversary: racing
    // writers on a seeded gate schedule, seeded power cuts, torn
    // lines, poisoned lines and transient read faults — recovery by
    // scan must either rebuild exactly or degrade by name, never
    // violate silently.
    fuzz::SweepOptions options;
    options.apps = {"halo-hashmap"};
    options.cases = 48;
    options.config.opsPerThread = 10;
    options.config.poolBytes = 24 << 20;
    options.config.threads = 3;
    options.config.faults = true;
    options.maxReproducers = 1;

    for (const auto &report : fuzz::sweep(options)) {
        EXPECT_EQ(report.violations, 0u)
            << report.app << ": "
            << (report.reproducers.empty()
                    ? "(no reproducer)"
                    : report.reproducers[0].why + " => " +
                          report.reproducers[0].command);
        EXPECT_EQ(report.casesRun, options.cases);
        EXPECT_GT(report.casesFired, 0u);
    }
}

} // namespace
} // namespace whisper

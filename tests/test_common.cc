/**
 * @file
 * Unit tests for src/common: RNG, histograms, tables, logical clock.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <initializer_list>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/flags.hh"
#include "common/histogram.hh"
#include "common/logical_clock.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/types.hh"

namespace whisper
{
namespace
{

TEST(Types, LineHelpers)
{
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(63), 0u);
    EXPECT_EQ(lineOf(64), 1u);
    EXPECT_EQ(lineBase(100), 64u);
    EXPECT_EQ(linesSpanned(0, 64), 1u);
    EXPECT_EQ(linesSpanned(63, 2), 2u);
    EXPECT_EQ(linesSpanned(0, 0), 0u);
    EXPECT_EQ(linesSpanned(10, 128), 3u);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += a() == b();
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundedNext)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.next(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; i++)
        seen.insert(rng.range(5, 8));
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_EQ(*seen.begin(), 5u);
    EXPECT_EQ(*seen.rbegin(), 8u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, StringLengthAndCharset)
{
    Rng rng(13);
    const std::string s = rng.nextString(64);
    EXPECT_EQ(s.size(), 64u);
    for (char c : s)
        EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
}

TEST(Zipfian, SkewTowardHotKeys)
{
    Rng rng(17);
    ZipfianGenerator zipf(1000);
    std::uint64_t hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++) {
        if (zipf.next(rng) < 10)
            hot++;
    }
    // The 1% hottest keys should draw far more than 1% of accesses.
    EXPECT_GT(hot, static_cast<std::uint64_t>(n) / 10);
}

TEST(Zipfian, InBounds)
{
    Rng rng(19);
    ZipfianGenerator zipf(37);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(zipf.next(rng), 37u);
}

TEST(ScrambledSequence, CoversWithoutEarlyRepeat)
{
    Rng rng(23);
    ScrambledSequence seq(1024, rng);
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1024; i++) {
        const std::uint64_t v = seq.at(i);
        EXPECT_LT(v, 1024u);
        seen.insert(v);
    }
    // An odd multiplier mod a power of two is a bijection.
    EXPECT_EQ(seen.size(), 1024u);
}

TEST(ScrambledSequence, BijectionAtAnySize)
{
    // Cycle-walking makes the map a true permutation of [0, n) for
    // every n, not just powers of two — the former weak spot that
    // forced vacation.cc to special-case its insertion order.
    for (std::uint64_t n :
         {1ull, 2ull, 3ull, 5ull, 7ull, 10ull, 100ull, 733ull,
          1000ull, 1023ull, 1025ull}) {
        Rng rng(29 + n);
        ScrambledSequence seq(n, rng);
        std::set<std::uint64_t> seen;
        for (std::uint64_t i = 0; i < n; i++) {
            const std::uint64_t v = seq.at(i);
            ASSERT_LT(v, n) << "n=" << n << " i=" << i;
            seen.insert(v);
        }
        EXPECT_EQ(seen.size(), n) << "n=" << n;
    }
}

TEST(ScrambledSequence, DeterministicPerSeed)
{
    Rng a(77), b(77), c(78);
    ScrambledSequence s1(500, a), s2(500, b), s3(500, c);
    bool any_diff = false;
    for (std::uint64_t i = 0; i < 500; i++) {
        EXPECT_EQ(s1.at(i), s2.at(i));
        any_diff |= s1.at(i) != s3.at(i);
    }
    EXPECT_TRUE(any_diff); // different seed, different permutation
}

TEST(Histogram, BasicStats)
{
    Histogram h;
    for (std::uint64_t v : {1, 1, 2, 3, 10})
        h.add(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 17u);
    EXPECT_DOUBLE_EQ(h.mean(), 17.0 / 5.0);
    EXPECT_EQ(h.median(), 2u);
    EXPECT_EQ(h.minValue(), 1u);
    EXPECT_EQ(h.maxValue(), 10u);
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 0.4);
    EXPECT_DOUBLE_EQ(h.fractionIn(1, 3), 0.8);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h;
    EXPECT_EQ(h.median(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(5), 0.0);
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a, b;
    a.add(1, 3);
    b.add(1, 2);
    b.add(7);
    a.merge(b);
    EXPECT_EQ(a.count(), 6u);
    EXPECT_DOUBLE_EQ(a.fractionAt(1), 5.0 / 6.0);
}

TEST(Histogram, QuantileMonotone)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 100; v++)
        h.add(v);
    EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
    EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(1.0), 99u);
}

TEST(BucketedDistribution, PaperEpochBuckets)
{
    Histogram h;
    h.add(1, 75);
    h.add(2, 10);
    h.add(30, 10);
    h.add(64, 5);
    const auto dist = BucketedDistribution::epochSizeBuckets();
    const auto frac = dist.fractions(h);
    ASSERT_EQ(frac.size(), 7u);
    EXPECT_DOUBLE_EQ(frac[0], 0.75);  // "1"
    EXPECT_DOUBLE_EQ(frac[1], 0.10);  // "2"
    EXPECT_DOUBLE_EQ(frac[5], 0.10);  // "6-63"
    EXPECT_DOUBLE_EQ(frac[6], 0.05);  // ">=64"
}

TEST(TextTable, RendersAligned)
{
    TextTable t("demo");
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"bbbb", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("bbbb"), std::string::npos);
    EXPECT_EQ(TextTable::percent(0.123, 1), "12.3%");
    EXPECT_EQ(TextTable::fixed(1.5, 2), "1.50");
}

TEST(ShardRanges, CoverAndBalance)
{
    const auto ranges = shardRanges(10, 4);
    ASSERT_EQ(ranges.size(), 4u);
    std::size_t covered = 0;
    std::size_t expect_begin = 0;
    for (const auto &r : ranges) {
        EXPECT_EQ(r.begin, expect_begin);
        EXPECT_GE(r.size(), 2u);
        EXPECT_LE(r.size(), 3u);
        covered += r.size();
        expect_begin = r.end;
    }
    EXPECT_EQ(covered, 10u);

    // More shards than items: one range per item, never empty.
    const auto tiny = shardRanges(2, 8);
    ASSERT_EQ(tiny.size(), 2u);
    EXPECT_EQ(tiny[0].size(), 1u);

    EXPECT_TRUE(shardRanges(0, 4).empty());
}

TEST(ThreadPool, CoversEveryIndexOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i]++; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, MapKeepsIndexOrder)
{
    ThreadPool pool(4);
    const auto out =
        pool.map(257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); i++)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, SingleWorkerRunsInline)
{
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    pool.parallelFor(5, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 20; round++) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(round + 1,
                         [&](std::size_t i) { sum += i; });
        const std::size_t n = round + 1;
        EXPECT_EQ(sum.load(), n * (n - 1) / 2);
    }
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(16,
                                  [](std::size_t i) {
                                      if (i == 7)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
    // The pool must remain usable after a failed batch.
    std::atomic<int> ran{0};
    pool.parallelFor(4, [&](std::size_t) { ran++; });
    EXPECT_EQ(ran.load(), 4);
}

TEST(LogicalClock, AdvancesMonotonically)
{
    LogicalClock clock;
    EXPECT_EQ(clock.now(), 0u);
    EXPECT_EQ(clock.advance(5), 5u);
    EXPECT_EQ(clock.advance(3), 8u);
    EXPECT_EQ(clock.now(), 8u);
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
}

// ----------------------------------------------------------- flags

/** parse() on a literal argv, skipping the usual cmd+subcommand. */
bool
parseArgs(FlagParser &fp, std::initializer_list<const char *> args)
{
    std::vector<char *> argv = {
        const_cast<char *>("whisper_cli"),
        const_cast<char *>("sub"),
    };
    for (const char *a : args)
        argv.push_back(const_cast<char *>(a));
    return fp.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParseU64DecimalAndHex)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseU64("1234", v));
    EXPECT_EQ(v, 1234u);
    // Crashfuzz replay commands round-trip seeds in hex.
    EXPECT_TRUE(parseU64("0x5eedF00d", v));
    EXPECT_EQ(v, 0x5eedF00dull);
    EXPECT_FALSE(parseU64("12x", v));
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64(nullptr, v));
}

TEST(Flags, BindingsAndDuplicateRejected)
{
    std::uint64_t ops = 7;
    unsigned threads = 1;
    bool json = false;
    std::size_t pool = 0;
    const char *app = nullptr;
    FlagParser fp;
    fp.u64("--ops", &ops)
        .u32("--threads", &threads, 1)
        .flag("--json", &json)
        .megabytes("--pool-mb", &pool)
        .str("--app", &app);
    EXPECT_TRUE(parseArgs(fp, {"--ops", "10", "--json", "--threads",
                               "4", "--pool-mb", "2", "--app",
                               "hashmap"}));
    EXPECT_EQ(ops, 10u);
    EXPECT_EQ(threads, 4u);
    EXPECT_TRUE(json);
    EXPECT_EQ(pool, std::size_t(2) << 20);
    EXPECT_STREQ(app, "hashmap");

    // A doubled flag in a pasted reproducer command is an editing
    // mistake, not a preference for the later value.
    EXPECT_FALSE(parseArgs(fp, {"--ops", "10", "--ops", "20"}));
    EXPECT_NE(fp.error().find("given twice"), std::string::npos);
    EXPECT_NE(fp.error().find("--ops"), std::string::npos);
    EXPECT_EQ(ops, 10u) << "failed parse must not clobber";

    // Valueless switches count too, and parse() resets the
    // seen-state: the same flag across two parses is fine.
    EXPECT_FALSE(parseArgs(fp, {"--json", "--json"}));
    EXPECT_NE(fp.error().find("--json"), std::string::npos);
    EXPECT_TRUE(parseArgs(fp, {"--json"}));
}

TEST(Flags, CommandNamePrefixesErrors)
{
    std::uint64_t ops = 0;
    FlagParser fp;
    fp.command("crashfuzz").u64("--ops", &ops);
    EXPECT_FALSE(parseArgs(fp, {"--bogus"}));
    EXPECT_EQ(fp.error().rfind("crashfuzz: ", 0), 0u)
        << fp.error();
    EXPECT_FALSE(parseArgs(fp, {"--ops", "1", "--ops", "2"}));
    EXPECT_EQ(fp.error().rfind("crashfuzz: flag '--ops' given twice",
                               0),
              0u)
        << fp.error();
    // Successful parses leave no stale error behind.
    EXPECT_TRUE(parseArgs(fp, {"--ops", "3"}));
    EXPECT_TRUE(fp.error().empty());
}

TEST(Flags, MinimumEnforced)
{
    unsigned threads = 2;
    FlagParser fp;
    fp.u32("--threads", &threads, 1);
    EXPECT_FALSE(parseArgs(fp, {"--threads", "0"}));
    EXPECT_NE(fp.error().find("--threads"), std::string::npos);
    EXPECT_EQ(threads, 2u) << "failed parse must not clobber";
}

TEST(Flags, UnknownFlagAndMissingValueFail)
{
    std::uint64_t ops = 0;
    FlagParser fp;
    fp.u64("--ops", &ops);
    EXPECT_FALSE(parseArgs(fp, {"--bogus"}));
    EXPECT_NE(fp.error().find("--bogus"), std::string::npos);
    EXPECT_FALSE(parseArgs(fp, {"--ops"}));
    EXPECT_NE(fp.error().find("missing value"), std::string::npos);
}

TEST(Flags, PositionalsInterleaveAndCap)
{
    bool json = false;
    FlagParser fp;
    fp.flag("--json", &json).maxPositionals(2);
    EXPECT_TRUE(parseArgs(fp, {"a", "--json", "b"}));
    ASSERT_EQ(fp.positionals().size(), 2u);
    EXPECT_STREQ(fp.positionals()[0], "a");
    EXPECT_STREQ(fp.positionals()[1], "b");

    FlagParser capped;
    capped.maxPositionals(1);
    EXPECT_FALSE(parseArgs(capped, {"a", "b"}));
}

TEST(Flags, CustomHandlerValidates)
{
    double theta = 0.0;
    FlagParser fp;
    fp.custom("--theta", [&theta](const char *v) {
        theta = std::atof(v);
        return theta > 0.0 && theta < 1.0;
    });
    EXPECT_TRUE(parseArgs(fp, {"--theta", "0.75"}));
    EXPECT_DOUBLE_EQ(theta, 0.75);
    EXPECT_FALSE(parseArgs(fp, {"--theta", "1.5"}));
    EXPECT_NE(fp.error().find("bad value"), std::string::npos);
}

} // namespace
} // namespace whisper

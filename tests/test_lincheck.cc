/**
 * @file
 * Durable-linearizability checker tests: golden accept/reject
 * histories per op kind, pending-subset crash semantics, real-time
 * order, budget degradation instead of hangs, history-file
 * round-trips, the recorder's fence classification, the fuzz and
 * workload-driver integrations (with the pinned pre-lincheck golden
 * digests guarding the lincheck-off path), and the end-to-end proof
 * that a deliberately broken commit path — invisible to every
 * structural invariant — is caught by the checker.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fuzz/crash_fuzz.hh"
#include "lincheck/checker.hh"
#include "lincheck/history_io.hh"
#include "lincheck/recorder.hh"
#include "mod/mod_hashmap.hh"
#include "workload/workload.hh"

namespace whisper
{
namespace
{

using lincheck::CheckOptions;
using lincheck::CheckResult;
using lincheck::History;
using lincheck::KeyState;
using lincheck::Op;
using lincheck::OpKind;

/** A fully-specified op record (responseTs == 0 means pending). */
Op
op(ThreadId thread, OpKind kind, std::uint64_t key, std::uint64_t arg,
   std::uint64_t invoke_ts, std::uint64_t response_ts,
   bool found = false, std::uint64_t read_value = 0,
   bool durable = false)
{
    Op o;
    o.thread = thread;
    o.kind = kind;
    o.key = key;
    o.arg = arg;
    o.completed = response_ts != 0;
    o.found = found;
    o.readValue = read_value;
    o.invokeTs = invoke_ts;
    o.responseTs = response_ts;
    o.durable = durable;
    return o;
}

// ------------------------------------------------- checker goldens

TEST(Lincheck, AcceptsSequentialHistoryEveryOpKind)
{
    History h;
    h.crashed = false;
    h.threads = 1;
    h.initial[1] = KeyState{true, 5};
    h.ops = {
        op(0, OpKind::Get, 1, 0, 1, 2, true, 5),
        op(0, OpKind::Put, 1, 7, 3, 4),
        op(0, OpKind::Rmw, 1, 3, 5, 6, true),   // 7 + 3 = 10
        op(0, OpKind::Get, 1, 0, 7, 8, true, 10),
        op(0, OpKind::Remove, 1, 0, 9, 10, true),
        op(0, OpKind::Get, 1, 0, 11, 12, false),
    };
    // Key 1 ends absent; untouched key 2 was and stays present.
    h.initial[2] = KeyState{true, 42};
    h.recovered[2] = KeyState{true, 42};
    const CheckResult res = lincheck::check(h);
    EXPECT_TRUE(res.ok) << res.brief();
    EXPECT_FALSE(res.budgetExhausted);
    ASSERT_EQ(res.keys.size(), 2u);
    EXPECT_TRUE(res.keys[0].ok);
    EXPECT_TRUE(res.keys[1].ok);
}

TEST(Lincheck, RejectsReadOfNeverWrittenValue)
{
    History h;
    h.crashed = false;
    h.threads = 1;
    h.ops = {
        op(0, OpKind::Put, 9, 100, 1, 2),
        op(0, OpKind::Get, 9, 0, 3, 4, true, 999),
    };
    h.recovered[9] = KeyState{true, 100};
    const CheckResult res = lincheck::check(h);
    EXPECT_FALSE(res.ok);
    ASSERT_EQ(res.keys.size(), 1u);
    EXPECT_FALSE(res.keys[0].ok);
    EXPECT_NE(res.keys[0].why.find("no witness"), std::string::npos);
}

TEST(Lincheck, TombstoneMustStayRemoved)
{
    History h;
    h.crashed = false;
    h.threads = 1;
    h.initial[4] = KeyState{true, 11};
    h.ops = {op(0, OpKind::Remove, 4, 0, 1, 2, true)};
    h.recovered[4] = KeyState{true, 11}; // resurrected: illegal
    EXPECT_FALSE(lincheck::check(h).ok);

    h.recovered.erase(4); // absent: the remove's only legal outcome
    EXPECT_TRUE(lincheck::check(h).ok);
}

TEST(Lincheck, PendingOpMayCommitOrVanishAtCrash)
{
    History base;
    base.crashed = true;
    base.threads = 1;
    base.ops = {op(0, OpKind::Put, 7, 9, 1, /*response_ts=*/0)};

    History dropped = base; // the pending put never happened
    EXPECT_TRUE(lincheck::check(dropped).ok);

    History committed = base; // ... or its effect reached PM
    committed.recovered[7] = KeyState{true, 9};
    EXPECT_TRUE(lincheck::check(committed).ok);

    History corrupt = base; // but a third value is a violation
    corrupt.recovered[7] = KeyState{true, 3};
    EXPECT_FALSE(lincheck::check(corrupt).ok);
}

TEST(Lincheck, RealTimeOrderIsEnforced)
{
    // put(1) ; put(2) ; get reads 1 — the get follows both puts in
    // real time, so no linearization explains the stale read.
    History h;
    h.crashed = false;
    h.threads = 2;
    h.ops = {
        op(0, OpKind::Put, 5, 1, 1, 2),
        op(1, OpKind::Put, 5, 2, 3, 4),
        op(0, OpKind::Get, 5, 0, 5, 6, true, 1),
    };
    h.recovered[5] = KeyState{true, 2};
    EXPECT_FALSE(lincheck::check(h).ok);

    // Overlap the second put with the get and the stale read becomes
    // legal: the get may linearize first.
    h.ops[1].invokeTs = 3;
    h.ops[1].responseTs = 7;
    h.ops[2].invokeTs = 4;
    h.ops[2].responseTs = 6;
    EXPECT_TRUE(lincheck::check(h).ok);
}

TEST(Lincheck, DurableOpMustSurviveTheCrash)
{
    History h;
    h.crashed = true;
    h.threads = 1;
    h.ops = {op(0, OpKind::Put, 3, 7, 1, 2, false, 0,
                /*durable=*/true)};
    // Durable (fence-covered) put lost: violation.
    EXPECT_FALSE(lincheck::check(h).ok);

    // The same put without fence coverage may be cut away.
    h.ops[0].durable = false;
    EXPECT_TRUE(lincheck::check(h).ok);
}

TEST(Lincheck, BudgetExhaustionDegradesInsteadOfHanging)
{
    // Overlapping completed ops plus pending ops force the DFS (no
    // sequential fast path); a one-node budget exhausts immediately.
    History h;
    h.crashed = true;
    h.threads = 4;
    for (unsigned t = 0; t < 4; t++) {
        h.ops.push_back(op(t, OpKind::Put, 1, t + 1, 1, 10 + t));
        h.ops.push_back(op(t, OpKind::Put, 1, 10 + t, 20, 0));
    }
    h.recovered[1] = KeyState{true, 4};
    CheckOptions opts;
    opts.nodeBudget = 1;
    const CheckResult res = lincheck::check(h, opts);
    EXPECT_TRUE(res.budgetExhausted);
    EXPECT_TRUE(res.ok) << "budget exhaustion is not a violation";
    ASSERT_EQ(res.keys.size(), 1u);
    EXPECT_TRUE(res.keys[0].budgetExhausted);
    EXPECT_EQ(res.keys[0].why, "lincheck-budget");
}

TEST(Lincheck, HistoryFileRoundTrips)
{
    History h;
    h.crashed = true;
    h.threads = 2;
    h.initial[1] = KeyState{true, 5};
    h.recovered[1] = KeyState{true, 7};
    h.ops = {
        op(0, OpKind::Put, 1, 7, 1, 2, false, 0, true),
        op(1, OpKind::Rmw, 1, 3, 3, 0), // pending
        op(0, OpKind::Get, 1, 0, 4, 5, true, 7),
        op(1, OpKind::Remove, 2, 0, 6, 7, false),
    };
    const std::string path =
        testing::TempDir() + "lincheck-roundtrip.hist";
    ASSERT_TRUE(lincheck::writeHistoryFile(path, h));

    History back;
    std::string error;
    ASSERT_TRUE(lincheck::readHistoryFile(path, back, error)) << error;
    EXPECT_EQ(back.crashed, h.crashed);
    EXPECT_EQ(back.threads, h.threads);
    EXPECT_EQ(back.initial.size(), h.initial.size());
    EXPECT_EQ(back.recovered.size(), h.recovered.size());
    ASSERT_EQ(back.ops.size(), h.ops.size());
    for (std::size_t i = 0; i < h.ops.size(); i++) {
        EXPECT_EQ(back.ops[i].kind, h.ops[i].kind) << i;
        EXPECT_EQ(back.ops[i].key, h.ops[i].key) << i;
        EXPECT_EQ(back.ops[i].arg, h.ops[i].arg) << i;
        EXPECT_EQ(back.ops[i].completed, h.ops[i].completed) << i;
        EXPECT_EQ(back.ops[i].durable, h.ops[i].durable) << i;
        EXPECT_EQ(back.ops[i].invokeTs, h.ops[i].invokeTs) << i;
        EXPECT_EQ(back.ops[i].responseTs, h.ops[i].responseTs) << i;
    }
    // Verdicts agree across the round trip.
    EXPECT_EQ(lincheck::check(back).digest(),
              lincheck::check(h).digest());
    std::remove(path.c_str());

    History missing;
    EXPECT_FALSE(lincheck::readHistoryFile(
        testing::TempDir() + "no-such-file.hist", missing, error));
    EXPECT_FALSE(error.empty());
}

TEST(Lincheck, MinimizerKeepsTheViolation)
{
    History h;
    h.crashed = false;
    h.threads = 1;
    // Violating key 1 plus a pile of irrelevant traffic on key 2.
    h.ops = {op(0, OpKind::Put, 1, 5, 1, 2),
             op(0, OpKind::Get, 1, 0, 3, 4, true, 999)};
    for (std::uint64_t i = 0; i < 10; i++) {
        h.ops.push_back(
            op(0, OpKind::Put, 2, i, 10 + 2 * i, 11 + 2 * i));
    }
    h.recovered[1] = KeyState{true, 5};
    h.recovered[2] = KeyState{true, 9};
    ASSERT_FALSE(lincheck::check(h).ok);

    const History m = lincheck::minimizeViolation(h);
    EXPECT_FALSE(lincheck::check(m).ok)
        << "minimized history must still be rejected";
    EXPECT_LT(m.ops.size(), h.ops.size());
    for (const Op &o : m.ops)
        EXPECT_EQ(o.key, 1u) << "passing keys must be dropped";

    // A passing history comes back unchanged.
    History fine;
    fine.crashed = false;
    fine.threads = 1;
    fine.ops = {op(0, OpKind::Put, 1, 5, 1, 2)};
    fine.recovered[1] = KeyState{true, 5};
    EXPECT_EQ(lincheck::minimizeViolation(fine).ops.size(), 1u);
}

TEST(Lincheck, RecorderClassifiesDurability)
{
    lincheck::HistoryRecorder rec;
    rec.enable(2);
    rec.noteInitial(1, true, 5);

    // Thread 0: put, then an admitted durability fence -> MUST.
    std::size_t p0 = rec.invoke(0, OpKind::Put, 1, 7);
    rec.response(0, p0, false, 0);
    rec.onFence(0, trace::FenceKind::Durability, /*admitted=*/true);

    // Thread 0: a get after the fence is never durable.
    std::size_t g0 = rec.invoke(0, OpKind::Get, 1, 0);
    rec.response(0, g0, true, 7);
    rec.onFence(0, trace::FenceKind::Durability, true);

    // Thread 1: a put with only an ordering fence (and a dropped
    // durability fence) stays droppable.
    std::size_t p1 = rec.invoke(1, OpKind::Put, 2, 9);
    rec.response(1, p1, false, 0);
    rec.onFence(1, trace::FenceKind::Ordering, true);
    rec.onFence(1, trace::FenceKind::Durability, /*admitted=*/false);

    rec.setCrashed(true);
    rec.noteRecovered(1, true, 7);
    const History h = rec.finish();
    EXPECT_TRUE(h.crashed);
    EXPECT_EQ(h.threads, 2u);
    ASSERT_EQ(h.ops.size(), 3u);
    // finish() folds per-thread logs in tid order.
    EXPECT_TRUE(h.ops[0].durable);
    EXPECT_FALSE(h.ops[1].durable) << "gets are never durable";
    EXPECT_FALSE(h.ops[2].durable) << "no admitted dfence on thread 1";
    EXPECT_TRUE(lincheck::check(h).ok);
}

// -------------------------------------- fuzz integration + goldens

/**
 * Satellite regression guard: with FuzzConfig::lincheck off, sweep
 * digests must stay bit-identical to the pre-lincheck goldens (jobs
 * count never matters). These constants were produced by the commit
 * that predates src/lincheck/ and must never drift.
 */
TEST(LincheckFuzz, GoldenDigestsUnchangedWithLincheckOff)
{
    fuzz::SweepOptions options;
    options.cases = 24;
    options.jobs = 4;
    options.apps = {"mod-hashmap", "halo-hashmap"};
    options.config.opsPerThread = 10;
    options.shrinkViolations = false;
    const auto reports = fuzz::sweep(options);
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].digest, 0xc4b27b9787761264ull);
    EXPECT_EQ(reports[1].digest, 0x5dbf9d21af58096full);
    for (const auto &rep : reports) {
        EXPECT_EQ(rep.violations, 0u);
        EXPECT_EQ(rep.lincheckViolations, 0u);
    }
}

TEST(LincheckFuzz, GoldenDigestsUnchangedMultiThreadFaults)
{
    fuzz::SweepOptions options;
    options.cases = 40;
    options.jobs = 4;
    options.apps = {"mod-hashmap", "mod-vector", "halo-hashmap"};
    options.config.opsPerThread = 12;
    options.config.threads = 3;
    options.config.faults = true;
    options.shrinkViolations = false;
    const auto reports = fuzz::sweep(options);
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[0].digest, 0x49b3fc2782f6583dull);
    EXPECT_EQ(reports[1].digest, 0x7e83f87f1911165cull);
    EXPECT_EQ(reports[2].digest, 0xbb641204cd3cb62full);
    for (const auto &rep : reports)
        EXPECT_EQ(rep.violations, 0u);
}

TEST(LincheckFuzz, CaseReplayIsBitIdentical)
{
    fuzz::FuzzConfig config;
    config.opsPerThread = 10;
    config.threads = 3;
    config.lincheck = true;
    const std::uint64_t total =
        fuzz::profilePmOps("mod-vector", config);
    ASSERT_GT(total, 0u);
    const fuzz::FuzzCase c =
        fuzz::deriveCase("mod-vector", 3, total, config);
    const fuzz::CaseOutcome first = fuzz::runCase(c, config);
    const fuzz::CaseOutcome second = fuzz::runCase(c, config);
    EXPECT_TRUE(first.lincheckRan);
    EXPECT_GT(first.lincheckKeys, 0u);
    EXPECT_EQ(first.digest, second.digest);
    EXPECT_EQ(first.lincheckOk, second.lincheckOk);
    EXPECT_EQ(first.lincheckKeys, second.lincheckKeys);
    EXPECT_EQ(first.imageHash, second.imageHash);
}

TEST(LincheckFuzz, SweepCleanAndDeterministic)
{
    fuzz::SweepOptions options;
    options.cases = 10;
    options.jobs = 4;
    options.apps = {"mod-hashmap", "halo-hashmap"};
    options.config.opsPerThread = 10;
    options.config.threads = 3;
    options.config.lincheck = true;
    options.shrinkViolations = false;
    const auto first = fuzz::sweep(options);
    const auto second = fuzz::sweep(options);
    ASSERT_EQ(first.size(), 2u);
    for (std::size_t i = 0; i < first.size(); i++) {
        EXPECT_EQ(first[i].violations, 0u) << first[i].app;
        EXPECT_EQ(first[i].lincheckViolations, 0u) << first[i].app;
        EXPECT_EQ(first[i].lincheckBudget, 0u) << first[i].app;
        EXPECT_EQ(first[i].digest, second[i].digest) << first[i].app;
    }
}

/**
 * The acceptance-criterion test: a commit path that durably publishes
 * a checksummed sentinel and patches the real payload in without a
 * flush passes every structural invariant — and only the
 * durable-linearizability checker convicts it.
 */
TEST(LincheckFuzz, CatchesBrokenCommitStructuralChecksMiss)
{
    mod::setBrokenCommitForTest(true);
    struct Reset {
        ~Reset() { mod::setBrokenCommitForTest(false); }
    } reset;

    fuzz::FuzzConfig config;
    config.opsPerThread = 12;
    config.lincheck = true;
    const std::uint64_t total =
        fuzz::profilePmOps("mod-hashmap", config);
    ASSERT_GT(total, 0u);

    bool caught = false;
    for (std::uint64_t id = 0; id < 64 && !caught; id++) {
        const fuzz::FuzzCase c =
            fuzz::deriveCase("mod-hashmap", id, total, config);
        const fuzz::CaseOutcome out = fuzz::runCase(c, config);
        ASSERT_TRUE(out.lincheckRan);
        if (out.lincheckOk || out.degraded)
            continue;
        caught = true;
        EXPECT_GT(out.lincheckViolations, 0u);
        EXPECT_FALSE(out.ok);
        EXPECT_NE(out.why.find("lincheck"), std::string::npos)
            << "only the lincheck invariant may fire: " << out.why;

        // The dumped history replays through the checker standalone.
        ASSERT_FALSE(out.lincheckDump.empty());
        History dumped;
        std::string error;
        ASSERT_TRUE(lincheck::readHistoryFile(out.lincheckDump,
                                              dumped, error))
            << error;
        EXPECT_FALSE(lincheck::check(dumped).ok);
        std::remove(out.lincheckDump.c_str());

        // The same case through the structural-only pipeline (run()
        // workload, no lincheck) accepts the broken commit: that is
        // precisely the blind spot this PR closes.
        fuzz::FuzzConfig plain = config;
        plain.lincheck = false;
        const std::uint64_t plain_total =
            fuzz::profilePmOps("mod-hashmap", plain);
        const fuzz::FuzzCase pc = fuzz::deriveCase(
            "mod-hashmap", c.caseId, plain_total, plain);
        const fuzz::CaseOutcome plain_out =
            fuzz::runCase(pc, plain);
        EXPECT_TRUE(plain_out.ok)
            << "structural invariants were supposed to accept the "
           "broken commit, but: " << plain_out.why;
    }
    EXPECT_TRUE(caught)
        << "no case in [0, 64) surfaced the broken commit";
}

// --------------------------------------- workload-driver recording

TEST(LincheckWorkload, DriverRecordsChecksAndStaysDeterministic)
{
    workload::WorkloadOptions opts;
    opts.app = "mod-hashmap";
    opts.mix = workload::MixSpec::ycsb('A');
    opts.keys = 120;
    opts.threads = 3;
    opts.opsPerThread = 80;
    opts.poolBytes = 96 << 20;
    opts.lincheck = true;

    const workload::WorkloadResult a = workload::runWorkload(opts);
    EXPECT_TRUE(a.lincheckRan);
    EXPECT_EQ(a.lincheckViolations, 0u);
    EXPECT_GE(a.lincheckKeys, opts.keys);
    EXPECT_TRUE(a.verified) << a.check.describe();

    const workload::WorkloadResult b = workload::runWorkload(opts);
    EXPECT_EQ(a.digest(), b.digest());

    // The recording changes neither the op stream nor its results.
    workload::WorkloadOptions plain = opts;
    plain.lincheck = false;
    const workload::WorkloadResult c = workload::runWorkload(plain);
    EXPECT_FALSE(c.lincheckRan);
    EXPECT_EQ(c.ops.reads, a.ops.reads);
    EXPECT_EQ(c.ops.readsFound, a.ops.readsFound);
    EXPECT_EQ(c.ops.updates, a.ops.updates);
    EXPECT_TRUE(c.verified);
}

TEST(LincheckWorkload, RmwAndInsertMixesFindWitnesses)
{
    for (const char *app : {"mod-vector", "halo-hashmap"}) {
        workload::WorkloadOptions opts;
        opts.app = app;
        opts.mix = workload::MixSpec::ycsb(
            std::string(app) == "mod-vector" ? 'F' : 'D');
        opts.dist = workload::KeyDist::Latest;
        opts.keys = 90;
        opts.threads = 3;
        opts.opsPerThread = 60;
        opts.poolBytes = 96 << 20;
        opts.lincheck = true;
        const workload::WorkloadResult res =
            workload::runWorkload(opts);
        EXPECT_TRUE(res.lincheckRan) << app;
        EXPECT_EQ(res.lincheckViolations, 0u) << app;
        EXPECT_TRUE(res.verified) << app << ": "
                                  << res.check.describe();
    }
}

} // namespace
} // namespace whisper

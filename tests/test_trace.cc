/**
 * @file
 * Unit tests for the trace framework: buffers, counters, merge order,
 * binary I/O round trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "trace/trace_io.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_set.hh"

namespace whisper::trace
{
namespace
{

TraceEvent
ev(Tick ts, EventKind kind, Addr addr = 0, std::uint32_t size = 8,
   DataClass cls = DataClass::User, std::uint8_t aux = 0)
{
    return TraceEvent{ts, addr, size, kind, cls, aux, 0};
}

TEST(TraceBuffer, CountsByKind)
{
    TraceBuffer buf(0);
    buf.push(ev(1, EventKind::PmStore, 0, 16));
    buf.push(ev(2, EventKind::PmNtStore, 64, 8, DataClass::Log));
    buf.push(ev(3, EventKind::PmFlush));
    buf.push(ev(4, EventKind::Fence));
    buf.push(ev(5, EventKind::PmLoad));
    const auto &c = buf.counters();
    EXPECT_EQ(c.pmStores, 1u);
    EXPECT_EQ(c.pmNtStores, 1u);
    EXPECT_EQ(c.pmFlushes, 1u);
    EXPECT_EQ(c.fences, 1u);
    EXPECT_EQ(c.pmLoads, 1u);
    EXPECT_EQ(c.pmWrites(), 2u);
    EXPECT_EQ(c.pmBytesByClass[static_cast<int>(DataClass::User)], 16u);
    EXPECT_EQ(c.pmBytesByClass[static_cast<int>(DataClass::Log)], 8u);
}

TEST(TraceBuffer, VolatileCountedNotStoredByDefault)
{
    TraceBuffer buf(0, false);
    buf.push(ev(1, EventKind::DramLoad));
    buf.push(ev(2, EventKind::DramStore));
    EXPECT_EQ(buf.counters().dramLoads, 1u);
    EXPECT_EQ(buf.counters().dramStores, 1u);
    EXPECT_TRUE(buf.empty());
}

TEST(TraceBuffer, VolatileStoredWhenEnabled)
{
    TraceBuffer buf(0, true);
    buf.push(ev(1, EventKind::DramLoad));
    EXPECT_EQ(buf.size(), 1u);
}

TEST(TraceBuffer, ClearResetsEverything)
{
    TraceBuffer buf(0);
    buf.push(ev(1, EventKind::PmStore));
    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.counters().pmStores, 0u);
}

TEST(TraceSet, MergeSortsByTimestamp)
{
    TraceSet set;
    TraceBuffer *b0 = set.createBuffer(0);
    TraceBuffer *b1 = set.createBuffer(1);
    b0->push(ev(10, EventKind::PmStore));
    b0->push(ev(30, EventKind::Fence));
    b1->push(ev(20, EventKind::PmStore));
    const auto merged = set.merged();
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].ev.ts, 10u);
    EXPECT_EQ(merged[0].tid, 0u);
    EXPECT_EQ(merged[1].ev.ts, 20u);
    EXPECT_EQ(merged[1].tid, 1u);
    EXPECT_EQ(merged[2].ev.ts, 30u);
}

TEST(TraceSet, FirstAndLastTick)
{
    TraceSet set;
    TraceBuffer *b0 = set.createBuffer(0);
    TraceBuffer *b1 = set.createBuffer(1);
    EXPECT_EQ(set.firstTick(), 0u);
    b0->push(ev(15, EventKind::PmStore));
    b1->push(ev(5, EventKind::PmStore));
    b1->push(ev(40, EventKind::Fence));
    EXPECT_EQ(set.firstTick(), 5u);
    EXPECT_EQ(set.lastTick(), 40u);
}

TEST(TraceSet, TotalCountersAggregate)
{
    TraceSet set;
    set.createBuffer(0)->push(ev(1, EventKind::PmStore));
    set.createBuffer(1)->push(ev(2, EventKind::PmStore));
    EXPECT_EQ(set.totalCounters().pmStores, 2u);
    EXPECT_EQ(set.totalEvents(), 2u);
}

TEST(TraceIo, RoundTrip)
{
    TraceSet set;
    TraceBuffer *b0 = set.createBuffer(0);
    TraceBuffer *b1 = set.createBuffer(3);
    b0->push(ev(1, EventKind::PmStore, 100, 8));
    b0->push(ev(2, EventKind::Fence, 0, 0, DataClass::None, 1));
    b1->push(ev(5, EventKind::PmNtStore, 4096, 64, DataClass::Log));

    const std::string path = "/tmp/whisper_trace_test.bin";
    ASSERT_TRUE(writeTraceFile(path, set));

    TraceSet loaded;
    ASSERT_TRUE(readTraceFile(path, loaded));
    std::remove(path.c_str());

    ASSERT_EQ(loaded.threadCount(), 2u);
    const TraceBuffer *l0 = loaded.buffer(0);
    const TraceBuffer *l1 = loaded.buffer(3);
    ASSERT_NE(l0, nullptr);
    ASSERT_NE(l1, nullptr);
    ASSERT_EQ(l0->size(), 2u);
    ASSERT_EQ(l1->size(), 1u);
    EXPECT_EQ(l0->events()[1].fenceKind(), FenceKind::Durability);
    EXPECT_EQ(l1->events()[0].addr, 4096u);
    EXPECT_EQ(l1->events()[0].cls, DataClass::Log);
}

TEST(TraceIo, RejectsMissingFile)
{
    TraceSet set;
    EXPECT_FALSE(readTraceFile("/tmp/definitely_missing_whisper", set));
}

TEST(TraceIo, RejectsGarbage)
{
    const std::string path = "/tmp/whisper_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace", f);
    std::fclose(f);
    TraceSet set;
    EXPECT_FALSE(readTraceFile(path, set));
    std::remove(path.c_str());
}

TEST(TraceReader, IndexesSectionsWithoutLoading)
{
    TraceSet set;
    TraceBuffer *b0 = set.createBuffer(0);
    TraceBuffer *b2 = set.createBuffer(2);
    for (Tick t = 1; t <= 10; t++)
        b0->push(ev(t, EventKind::PmStore, t * 64));
    b2->push(ev(3, EventKind::Fence, 0, 0, DataClass::None, 1));

    const std::string path = "/tmp/whisper_reader_index.bin";
    ASSERT_TRUE(writeTraceFile(path, set));

    TraceFileReader reader;
    ASSERT_TRUE(reader.open(path));
    std::remove(path.c_str());

    ASSERT_EQ(reader.threadCount(), 2u);
    EXPECT_EQ(reader.sections()[0].tid, 0u);
    EXPECT_EQ(reader.sections()[0].eventCount, 10u);
    EXPECT_EQ(reader.sections()[1].tid, 2u);
    EXPECT_EQ(reader.sections()[1].eventCount, 1u);
    EXPECT_EQ(reader.totalEvents(), 11u);
    // Section payloads start right after the two fixed headers.
    EXPECT_EQ(reader.sections()[0].fileOffset,
              sizeof(TraceFileHeader) + sizeof(TraceSectionHeader));
}

TEST(TraceReader, StreamsChunksInProgramOrder)
{
    TraceSet set;
    TraceBuffer *b = set.createBuffer(7);
    for (Tick t = 1; t <= 100; t++)
        b->push(ev(t, EventKind::PmStore, t * 8, 8));

    const std::string path = "/tmp/whisper_reader_chunks.bin";
    ASSERT_TRUE(writeTraceFile(path, set));

    TraceFileReader reader;
    ASSERT_TRUE(reader.open(path));

    // A 7-event chunk size forces many partial chunks.
    std::vector<TraceEvent> streamed;
    std::size_t chunks = 0;
    ASSERT_TRUE(reader.streamSection(
        0,
        [&](const TraceEvent *events, std::size_t count) {
            chunks++;
            EXPECT_LE(count, 7u);
            streamed.insert(streamed.end(), events, events + count);
        },
        7));
    std::remove(path.c_str());

    ASSERT_EQ(streamed.size(), b->events().size());
    EXPECT_EQ(chunks, (100 + 6) / 7u);
    for (std::size_t i = 0; i < streamed.size(); i++) {
        EXPECT_EQ(streamed[i].ts, b->events()[i].ts);
        EXPECT_EQ(streamed[i].addr, b->events()[i].addr);
    }
}

TEST(TraceReader, RejectsGarbageAndMissing)
{
    TraceFileReader reader;
    EXPECT_FALSE(reader.open("/tmp/definitely_missing_whisper"));
    EXPECT_EQ(reader.lastError(), TraceReadError::Io);

    const std::string path = "/tmp/whisper_reader_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace", f);
    std::fclose(f);
    EXPECT_FALSE(reader.open(path));
    EXPECT_EQ(reader.threadCount(), 0u);
    EXPECT_EQ(reader.lastError(), TraceReadError::Truncated);
    std::remove(path.c_str());
}

TEST(TraceReader, RejectsByteTruncatedTrace)
{
    TraceSet set;
    TraceBuffer *b = set.createBuffer(0);
    for (Tick t = 1; t <= 50; t++)
        b->push(ev(t, EventKind::PmStore, t * 8, 8));

    const std::string path = "/tmp/whisper_reader_truncated.bin";
    ASSERT_TRUE(writeTraceFile(path, set));

    // Chop bytes off the last event: the headers now promise more
    // payload than the file holds, and open() must reject the file
    // up front rather than hand a stream that dies mid-analysis.
    std::vector<char> bytes;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        int c = 0;
        while ((c = std::fgetc(f)) != EOF)
            bytes.push_back(static_cast<char>(c));
        std::fclose(f);
    }
    ASSERT_GT(bytes.size(), 17u);
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(bytes.data(), 1, bytes.size() - 17, f);
        std::fclose(f);
    }

    TraceFileReader reader;
    EXPECT_FALSE(reader.open(path));
    EXPECT_EQ(reader.lastError(), TraceReadError::Truncated);
    EXPECT_EQ(reader.threadCount(), 0u);
    EXPECT_STREQ(traceReadErrorName(reader.lastError()), "truncated");
    std::remove(path.c_str());
}

TEST(TraceReader, ReportsShortReadWhenFileShrinksAfterOpen)
{
    TraceSet set;
    TraceBuffer *b = set.createBuffer(0);
    for (Tick t = 1; t <= 50; t++)
        b->push(ev(t, EventKind::PmStore, t * 8, 8));

    const std::string path = "/tmp/whisper_reader_shrunk.bin";
    ASSERT_TRUE(writeTraceFile(path, set));

    TraceFileReader reader;
    ASSERT_TRUE(reader.open(path));
    EXPECT_EQ(reader.lastError(), TraceReadError::None);

    // Shrink the file after indexing: streaming must fail with a
    // structured ShortRead, not abort or report success.
    std::vector<char> bytes;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        int c = 0;
        while ((c = std::fgetc(f)) != EOF)
            bytes.push_back(static_cast<char>(c));
        std::fclose(f);
    }
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
        std::fclose(f);
    }

    TraceReadError err = TraceReadError::None;
    std::size_t seen = 0;
    EXPECT_FALSE(reader.streamSection(
        0,
        [&](const TraceEvent *, std::size_t count) { seen += count; },
        TraceFileReader::kDefaultChunkEvents, &err));
    EXPECT_EQ(err, TraceReadError::ShortRead);
    EXPECT_LT(seen, 50u);
    std::remove(path.c_str());
}

TEST(AccessCounters, AddMatchesBufferPush)
{
    // AccessCounters::add must be the exact counter effect of push,
    // so streaming readers can rebuild counters without a buffer.
    TraceBuffer buf(0, /*record_volatile=*/true);
    AccessCounters direct;
    const std::vector<TraceEvent> events = {
        ev(1, EventKind::PmStore, 0, 16),
        ev(2, EventKind::PmNtStore, 64, 8, DataClass::Log),
        ev(3, EventKind::PmLoad, 0),
        ev(4, EventKind::PmFlush, 0),
        ev(5, EventKind::Fence, 0, 0, DataClass::None),
        ev(6, EventKind::DramLoad, 0),
        ev(7, EventKind::DramStore, 0),
        ev(8, EventKind::TxBegin, 42),
    };
    for (const auto &e : events) {
        buf.push(e);
        direct.add(e);
    }
    EXPECT_EQ(direct.pmStores, buf.counters().pmStores);
    EXPECT_EQ(direct.pmNtStores, buf.counters().pmNtStores);
    EXPECT_EQ(direct.pmLoads, buf.counters().pmLoads);
    EXPECT_EQ(direct.pmFlushes, buf.counters().pmFlushes);
    EXPECT_EQ(direct.fences, buf.counters().fences);
    EXPECT_EQ(direct.dramLoads, buf.counters().dramLoads);
    EXPECT_EQ(direct.dramStores, buf.counters().dramStores);
    EXPECT_EQ(direct.pmStoreBytes, buf.counters().pmStoreBytes);
    EXPECT_EQ(direct.pmNtStoreBytes, buf.counters().pmNtStoreBytes);
    for (int c = 0; c < 6; c++)
        EXPECT_EQ(direct.pmBytesByClass[c],
                  buf.counters().pmBytesByClass[c]);
}

TEST(Event, Names)
{
    EXPECT_STREQ(eventKindName(EventKind::PmStore), "pm_store");
    EXPECT_STREQ(eventKindName(EventKind::DramLoad), "dram_load");
    EXPECT_STREQ(dataClassName(DataClass::AllocMeta), "alloc");
}

} // namespace
} // namespace whisper::trace

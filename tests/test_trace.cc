/**
 * @file
 * Unit tests for the trace framework: buffers, counters, merge order,
 * binary I/O round trips.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/trace_io.hh"
#include "trace/trace_set.hh"

namespace whisper::trace
{
namespace
{

TraceEvent
ev(Tick ts, EventKind kind, Addr addr = 0, std::uint32_t size = 8,
   DataClass cls = DataClass::User, std::uint8_t aux = 0)
{
    return TraceEvent{ts, addr, size, kind, cls, aux, 0};
}

TEST(TraceBuffer, CountsByKind)
{
    TraceBuffer buf(0);
    buf.push(ev(1, EventKind::PmStore, 0, 16));
    buf.push(ev(2, EventKind::PmNtStore, 64, 8, DataClass::Log));
    buf.push(ev(3, EventKind::PmFlush));
    buf.push(ev(4, EventKind::Fence));
    buf.push(ev(5, EventKind::PmLoad));
    const auto &c = buf.counters();
    EXPECT_EQ(c.pmStores, 1u);
    EXPECT_EQ(c.pmNtStores, 1u);
    EXPECT_EQ(c.pmFlushes, 1u);
    EXPECT_EQ(c.fences, 1u);
    EXPECT_EQ(c.pmLoads, 1u);
    EXPECT_EQ(c.pmWrites(), 2u);
    EXPECT_EQ(c.pmBytesByClass[static_cast<int>(DataClass::User)], 16u);
    EXPECT_EQ(c.pmBytesByClass[static_cast<int>(DataClass::Log)], 8u);
}

TEST(TraceBuffer, VolatileCountedNotStoredByDefault)
{
    TraceBuffer buf(0, false);
    buf.push(ev(1, EventKind::DramLoad));
    buf.push(ev(2, EventKind::DramStore));
    EXPECT_EQ(buf.counters().dramLoads, 1u);
    EXPECT_EQ(buf.counters().dramStores, 1u);
    EXPECT_TRUE(buf.empty());
}

TEST(TraceBuffer, VolatileStoredWhenEnabled)
{
    TraceBuffer buf(0, true);
    buf.push(ev(1, EventKind::DramLoad));
    EXPECT_EQ(buf.size(), 1u);
}

TEST(TraceBuffer, ClearResetsEverything)
{
    TraceBuffer buf(0);
    buf.push(ev(1, EventKind::PmStore));
    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.counters().pmStores, 0u);
}

TEST(TraceSet, MergeSortsByTimestamp)
{
    TraceSet set;
    TraceBuffer *b0 = set.createBuffer(0);
    TraceBuffer *b1 = set.createBuffer(1);
    b0->push(ev(10, EventKind::PmStore));
    b0->push(ev(30, EventKind::Fence));
    b1->push(ev(20, EventKind::PmStore));
    const auto merged = set.merged();
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].ev.ts, 10u);
    EXPECT_EQ(merged[0].tid, 0u);
    EXPECT_EQ(merged[1].ev.ts, 20u);
    EXPECT_EQ(merged[1].tid, 1u);
    EXPECT_EQ(merged[2].ev.ts, 30u);
}

TEST(TraceSet, FirstAndLastTick)
{
    TraceSet set;
    TraceBuffer *b0 = set.createBuffer(0);
    TraceBuffer *b1 = set.createBuffer(1);
    EXPECT_EQ(set.firstTick(), 0u);
    b0->push(ev(15, EventKind::PmStore));
    b1->push(ev(5, EventKind::PmStore));
    b1->push(ev(40, EventKind::Fence));
    EXPECT_EQ(set.firstTick(), 5u);
    EXPECT_EQ(set.lastTick(), 40u);
}

TEST(TraceSet, TotalCountersAggregate)
{
    TraceSet set;
    set.createBuffer(0)->push(ev(1, EventKind::PmStore));
    set.createBuffer(1)->push(ev(2, EventKind::PmStore));
    EXPECT_EQ(set.totalCounters().pmStores, 2u);
    EXPECT_EQ(set.totalEvents(), 2u);
}

TEST(TraceIo, RoundTrip)
{
    TraceSet set;
    TraceBuffer *b0 = set.createBuffer(0);
    TraceBuffer *b1 = set.createBuffer(3);
    b0->push(ev(1, EventKind::PmStore, 100, 8));
    b0->push(ev(2, EventKind::Fence, 0, 0, DataClass::None, 1));
    b1->push(ev(5, EventKind::PmNtStore, 4096, 64, DataClass::Log));

    const std::string path = "/tmp/whisper_trace_test.bin";
    ASSERT_TRUE(writeTraceFile(path, set));

    TraceSet loaded;
    ASSERT_TRUE(readTraceFile(path, loaded));
    std::remove(path.c_str());

    ASSERT_EQ(loaded.threadCount(), 2u);
    const TraceBuffer *l0 = loaded.buffer(0);
    const TraceBuffer *l1 = loaded.buffer(3);
    ASSERT_NE(l0, nullptr);
    ASSERT_NE(l1, nullptr);
    ASSERT_EQ(l0->size(), 2u);
    ASSERT_EQ(l1->size(), 1u);
    EXPECT_EQ(l0->events()[1].fenceKind(), FenceKind::Durability);
    EXPECT_EQ(l1->events()[0].addr, 4096u);
    EXPECT_EQ(l1->events()[0].cls, DataClass::Log);
}

TEST(TraceIo, RejectsMissingFile)
{
    TraceSet set;
    EXPECT_FALSE(readTraceFile("/tmp/definitely_missing_whisper", set));
}

TEST(TraceIo, RejectsGarbage)
{
    const std::string path = "/tmp/whisper_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace", f);
    std::fclose(f);
    TraceSet set;
    EXPECT_FALSE(readTraceFile(path, set));
    std::remove(path.c_str());
}

TEST(Event, Names)
{
    EXPECT_STREQ(eventKindName(EventKind::PmStore), "pm_store");
    EXPECT_STREQ(eventKindName(EventKind::DramLoad), "dram_load");
    EXPECT_STREQ(dataClassName(DataClass::AllocMeta), "alloc");
}

} // namespace
} // namespace whisper::trace

/**
 * @file
 * Unit tests for the trace analysis: epoch reconstruction, size and
 * transaction distributions, dependency classification, access mixes
 * and write amplification.
 */

#include <gtest/gtest.h>

#include "analysis/access_mix.hh"
#include "analysis/dependency.hh"
#include "analysis/epoch_stats.hh"

namespace whisper::analysis
{
namespace
{

using trace::DataClass;
using trace::EventKind;
using trace::FenceKind;
using trace::TraceEvent;
using trace::TraceSet;

TraceEvent
ev(Tick ts, EventKind kind, Addr addr = 0, std::uint32_t size = 8,
   DataClass cls = DataClass::User, std::uint8_t aux = 0)
{
    return TraceEvent{ts, addr, size, kind, cls, aux, 0};
}

TEST(EpochBuilder, SplitsAtFences)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore, 0));
    b->push(ev(2, EventKind::PmStore, 64));
    b->push(ev(3, EventKind::Fence));
    b->push(ev(4, EventKind::PmStore, 128));
    b->push(ev(5, EventKind::Fence));

    EpochBuilder builder(set);
    ASSERT_EQ(builder.epochCount(), 2u);
    EXPECT_EQ(builder.epochs()[0].size(), 2u);
    EXPECT_EQ(builder.epochs()[1].size(), 1u);
    EXPECT_TRUE(builder.epochs()[1].isSingleton());
}

TEST(EpochBuilder, UniqueLinesNotStores)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    // Three stores, two of them to the same line.
    b->push(ev(1, EventKind::PmStore, 0));
    b->push(ev(2, EventKind::PmStore, 8));
    b->push(ev(3, EventKind::PmStore, 200));
    b->push(ev(4, EventKind::Fence));
    EpochBuilder builder(set);
    ASSERT_EQ(builder.epochCount(), 1u);
    EXPECT_EQ(builder.epochs()[0].size(), 2u);
    EXPECT_EQ(builder.epochs()[0].storeCount, 3u);
}

TEST(EpochBuilder, MultiLineStoreSpans)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmNtStore, 0, 4096)); // a PMFS block
    b->push(ev(2, EventKind::Fence));
    EpochBuilder builder(set);
    ASSERT_EQ(builder.epochCount(), 1u);
    EXPECT_EQ(builder.epochs()[0].size(), 64u);
    EXPECT_EQ(builder.epochs()[0].ntStoreCount, 1u);
}

TEST(EpochBuilder, EmptyFencesDoNotCreateEpochs)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::Fence));
    b->push(ev(2, EventKind::Fence));
    b->push(ev(3, EventKind::PmStore, 0));
    // No closing fence: the trailing open epoch is not counted.
    EpochBuilder builder(set);
    EXPECT_EQ(builder.epochCount(), 0u);
}

TEST(EpochBuilder, AttributesEpochsToTransactions)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::TxBegin, 77));
    b->push(ev(2, EventKind::PmStore, 0));
    b->push(ev(3, EventKind::Fence));
    b->push(ev(4, EventKind::PmStore, 64));
    b->push(ev(5, EventKind::Fence, 0, 0, DataClass::None,
               static_cast<std::uint8_t>(FenceKind::Durability)));
    b->push(ev(6, EventKind::TxEnd, 77));
    b->push(ev(7, EventKind::PmStore, 128)); // outside any tx
    b->push(ev(8, EventKind::Fence));

    EpochBuilder builder(set);
    ASSERT_EQ(builder.epochCount(), 3u);
    ASSERT_EQ(builder.transactions().size(), 1u);
    EXPECT_EQ(builder.transactions()[0].epochs, 2u);
    EXPECT_EQ(builder.epochs()[2].tx, 0u);
}

TEST(EpochStats, SummaryNumbers)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    // Singleton of 4 bytes (small), then a 2-line epoch.
    b->push(ev(100, EventKind::PmStore, 0, 4));
    b->push(ev(200, EventKind::Fence));
    b->push(ev(300, EventKind::PmStore, 0, 64));
    b->push(ev(400, EventKind::PmStore, 64, 64));
    b->push(ev(500, EventKind::Fence, 0, 0, DataClass::None,
               static_cast<std::uint8_t>(FenceKind::Durability)));

    EpochBuilder builder(set);
    const EpochSummary sum = summarizeEpochs(builder, set);
    EXPECT_EQ(sum.totalEpochs, 2u);
    EXPECT_DOUBLE_EQ(sum.singletonFraction, 0.5);
    EXPECT_DOUBLE_EQ(sum.singletonUnder10B, 1.0);
    EXPECT_DOUBLE_EQ(sum.durabilityFenceFraction, 0.5);
    EXPECT_GT(sum.epochsPerSecond, 0.0);
}

TEST(Dependency, SelfDependencyWithinWindow)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1000, EventKind::PmStore, 0));
    b->push(ev(1100, EventKind::Fence));
    b->push(ev(1200, EventKind::PmStore, 0)); // same line, same thread
    b->push(ev(1300, EventKind::Fence));
    EpochBuilder builder(set);
    const auto deps = analyzeDependencies(builder);
    EXPECT_EQ(deps.totalEpochs, 2u);
    EXPECT_EQ(deps.selfDependent, 1u);
    EXPECT_EQ(deps.crossDependent, 0u);
}

TEST(Dependency, CrossDependencyAcrossThreads)
{
    TraceSet set;
    auto *b0 = set.createBuffer(0);
    auto *b1 = set.createBuffer(1);
    b0->push(ev(1000, EventKind::PmStore, 64));
    b0->push(ev(1100, EventKind::Fence));
    b1->push(ev(1200, EventKind::PmStore, 64));
    b1->push(ev(1300, EventKind::Fence));
    EpochBuilder builder(set);
    const auto deps = analyzeDependencies(builder);
    EXPECT_EQ(deps.crossDependent, 1u);
    EXPECT_EQ(deps.selfDependent, 0u);
}

TEST(Dependency, OutsideWindowIgnored)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1000, EventKind::PmStore, 0));
    b->push(ev(1100, EventKind::Fence));
    // 60 us later: outside the 50 us window.
    b->push(ev(1100 + 60 * kTicksPerUs, EventKind::PmStore, 0));
    b->push(ev(1200 + 60 * kTicksPerUs, EventKind::Fence));
    EpochBuilder builder(set);
    const auto deps = analyzeDependencies(builder);
    EXPECT_EQ(deps.selfDependent, 0u);
}

TEST(Dependency, DisjointLinesNoDependency)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1000, EventKind::PmStore, 0));
    b->push(ev(1100, EventKind::Fence));
    b->push(ev(1200, EventKind::PmStore, 640));
    b->push(ev(1300, EventKind::Fence));
    EpochBuilder builder(set);
    const auto deps = analyzeDependencies(builder);
    EXPECT_EQ(deps.selfDependent, 0u);
    EXPECT_EQ(deps.crossDependent, 0u);
}

TEST(AccessMix, Fractions)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore));
    b->push(ev(2, EventKind::DramLoad));
    b->push(ev(3, EventKind::DramStore));
    b->push(ev(4, EventKind::DramLoad));
    const AccessMix mix = computeAccessMix(set);
    EXPECT_EQ(mix.pmAccesses, 1u);
    EXPECT_EQ(mix.dramAccesses, 3u);
    EXPECT_DOUBLE_EQ(mix.pmFraction(), 0.25);
}

TEST(NtiUsage, Fraction)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore));
    b->push(ev(2, EventKind::PmNtStore));
    b->push(ev(3, EventKind::PmNtStore));
    const NtiUsage nti = computeNtiUsage(set);
    EXPECT_DOUBLE_EQ(nti.ntiFraction(), 2.0 / 3.0);
}

TEST(Amplification, RatioByClass)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore, 0, 100, DataClass::User));
    b->push(ev(2, EventKind::PmStore, 0, 30, DataClass::Log));
    b->push(ev(3, EventKind::PmStore, 0, 50, DataClass::AllocMeta));
    b->push(ev(4, EventKind::PmStore, 0, 20, DataClass::TxMeta));
    const Amplification amp = computeAmplification(set);
    EXPECT_EQ(amp.userBytes, 100u);
    EXPECT_EQ(amp.metaBytes(), 100u);
    EXPECT_DOUBLE_EQ(amp.ratio(), 1.0);
}

} // namespace
} // namespace whisper::analysis

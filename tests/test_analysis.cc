/**
 * @file
 * Unit tests for the trace analysis: epoch reconstruction, size and
 * transaction distributions, dependency classification, access mixes
 * and write amplification.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "analysis/access_mix.hh"
#include "analysis/dependency.hh"
#include "analysis/epoch_stats.hh"
#include "analysis/pipeline.hh"
#include "common/thread_pool.hh"
#include "core/harness.hh"
#include "trace/trace_io.hh"

namespace whisper::analysis
{
namespace
{

using trace::DataClass;
using trace::EventKind;
using trace::FenceKind;
using trace::TraceEvent;
using trace::TraceSet;

TraceEvent
ev(Tick ts, EventKind kind, Addr addr = 0, std::uint32_t size = 8,
   DataClass cls = DataClass::User, std::uint8_t aux = 0)
{
    return TraceEvent{ts, addr, size, kind, cls, aux, 0};
}

TEST(EpochBuilder, SplitsAtFences)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore, 0));
    b->push(ev(2, EventKind::PmStore, 64));
    b->push(ev(3, EventKind::Fence));
    b->push(ev(4, EventKind::PmStore, 128));
    b->push(ev(5, EventKind::Fence));

    EpochBuilder builder(set);
    ASSERT_EQ(builder.epochCount(), 2u);
    EXPECT_EQ(builder.epochs()[0].size(), 2u);
    EXPECT_EQ(builder.epochs()[1].size(), 1u);
    EXPECT_TRUE(builder.epochs()[1].isSingleton());
}

TEST(EpochBuilder, UniqueLinesNotStores)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    // Three stores, two of them to the same line.
    b->push(ev(1, EventKind::PmStore, 0));
    b->push(ev(2, EventKind::PmStore, 8));
    b->push(ev(3, EventKind::PmStore, 200));
    b->push(ev(4, EventKind::Fence));
    EpochBuilder builder(set);
    ASSERT_EQ(builder.epochCount(), 1u);
    EXPECT_EQ(builder.epochs()[0].size(), 2u);
    EXPECT_EQ(builder.epochs()[0].storeCount, 3u);
}

TEST(EpochBuilder, MultiLineStoreSpans)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmNtStore, 0, 4096)); // a PMFS block
    b->push(ev(2, EventKind::Fence));
    EpochBuilder builder(set);
    ASSERT_EQ(builder.epochCount(), 1u);
    EXPECT_EQ(builder.epochs()[0].size(), 64u);
    EXPECT_EQ(builder.epochs()[0].ntStoreCount, 1u);
}

TEST(EpochBuilder, EmptyFencesDoNotCreateEpochs)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::Fence));
    b->push(ev(2, EventKind::Fence));
    b->push(ev(3, EventKind::PmStore, 0));
    // No closing fence: the trailing open epoch is not counted.
    EpochBuilder builder(set);
    EXPECT_EQ(builder.epochCount(), 0u);
}

TEST(EpochBuilder, AttributesEpochsToTransactions)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::TxBegin, 77));
    b->push(ev(2, EventKind::PmStore, 0));
    b->push(ev(3, EventKind::Fence));
    b->push(ev(4, EventKind::PmStore, 64));
    b->push(ev(5, EventKind::Fence, 0, 0, DataClass::None,
               static_cast<std::uint8_t>(FenceKind::Durability)));
    b->push(ev(6, EventKind::TxEnd, 77));
    b->push(ev(7, EventKind::PmStore, 128)); // outside any tx
    b->push(ev(8, EventKind::Fence));

    EpochBuilder builder(set);
    ASSERT_EQ(builder.epochCount(), 3u);
    ASSERT_EQ(builder.transactions().size(), 1u);
    EXPECT_EQ(builder.transactions()[0].epochs, 2u);
    EXPECT_EQ(builder.epochs()[2].tx, 0u);
}

TEST(EpochStats, SummaryNumbers)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    // Singleton of 4 bytes (small), then a 2-line epoch.
    b->push(ev(100, EventKind::PmStore, 0, 4));
    b->push(ev(200, EventKind::Fence));
    b->push(ev(300, EventKind::PmStore, 0, 64));
    b->push(ev(400, EventKind::PmStore, 64, 64));
    b->push(ev(500, EventKind::Fence, 0, 0, DataClass::None,
               static_cast<std::uint8_t>(FenceKind::Durability)));

    EpochBuilder builder(set);
    const EpochSummary sum = summarizeEpochs(builder, set);
    EXPECT_EQ(sum.totalEpochs, 2u);
    EXPECT_DOUBLE_EQ(sum.singletonFraction, 0.5);
    EXPECT_DOUBLE_EQ(sum.singletonUnder10B, 1.0);
    EXPECT_DOUBLE_EQ(sum.durabilityFenceFraction, 0.5);
    EXPECT_GT(sum.epochsPerSecond, 0.0);
}

TEST(Dependency, SelfDependencyWithinWindow)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1000, EventKind::PmStore, 0));
    b->push(ev(1100, EventKind::Fence));
    b->push(ev(1200, EventKind::PmStore, 0)); // same line, same thread
    b->push(ev(1300, EventKind::Fence));
    EpochBuilder builder(set);
    const auto deps = analyzeDependencies(builder);
    EXPECT_EQ(deps.totalEpochs, 2u);
    EXPECT_EQ(deps.selfDependent, 1u);
    EXPECT_EQ(deps.crossDependent, 0u);
}

TEST(Dependency, CrossDependencyAcrossThreads)
{
    TraceSet set;
    auto *b0 = set.createBuffer(0);
    auto *b1 = set.createBuffer(1);
    b0->push(ev(1000, EventKind::PmStore, 64));
    b0->push(ev(1100, EventKind::Fence));
    b1->push(ev(1200, EventKind::PmStore, 64));
    b1->push(ev(1300, EventKind::Fence));
    EpochBuilder builder(set);
    const auto deps = analyzeDependencies(builder);
    EXPECT_EQ(deps.crossDependent, 1u);
    EXPECT_EQ(deps.selfDependent, 0u);
}

TEST(Dependency, OutsideWindowIgnored)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1000, EventKind::PmStore, 0));
    b->push(ev(1100, EventKind::Fence));
    // 60 us later: outside the 50 us window.
    b->push(ev(1100 + 60 * kTicksPerUs, EventKind::PmStore, 0));
    b->push(ev(1200 + 60 * kTicksPerUs, EventKind::Fence));
    EpochBuilder builder(set);
    const auto deps = analyzeDependencies(builder);
    EXPECT_EQ(deps.selfDependent, 0u);
}

TEST(Dependency, DisjointLinesNoDependency)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1000, EventKind::PmStore, 0));
    b->push(ev(1100, EventKind::Fence));
    b->push(ev(1200, EventKind::PmStore, 640));
    b->push(ev(1300, EventKind::Fence));
    EpochBuilder builder(set);
    const auto deps = analyzeDependencies(builder);
    EXPECT_EQ(deps.selfDependent, 0u);
    EXPECT_EQ(deps.crossDependent, 0u);
}

TEST(AccessMix, Fractions)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore));
    b->push(ev(2, EventKind::DramLoad));
    b->push(ev(3, EventKind::DramStore));
    b->push(ev(4, EventKind::DramLoad));
    const AccessMix mix = computeAccessMix(set);
    EXPECT_EQ(mix.pmAccesses, 1u);
    EXPECT_EQ(mix.dramAccesses, 3u);
    EXPECT_DOUBLE_EQ(mix.pmFraction(), 0.25);
}

TEST(NtiUsage, Fraction)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore));
    b->push(ev(2, EventKind::PmNtStore));
    b->push(ev(3, EventKind::PmNtStore));
    const NtiUsage nti = computeNtiUsage(set);
    EXPECT_DOUBLE_EQ(nti.ntiFraction(), 2.0 / 3.0);
}

TEST(Amplification, RatioByClass)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore, 0, 100, DataClass::User));
    b->push(ev(2, EventKind::PmStore, 0, 30, DataClass::Log));
    b->push(ev(3, EventKind::PmStore, 0, 50, DataClass::AllocMeta));
    b->push(ev(4, EventKind::PmStore, 0, 20, DataClass::TxMeta));
    const Amplification amp = computeAmplification(set);
    EXPECT_EQ(amp.userBytes, 100u);
    EXPECT_EQ(amp.metaBytes(), 100u);
    EXPECT_DOUBLE_EQ(amp.ratio(), 1.0);
}

// ---------------------------------------------------------------
// Mergeable accumulators and the parallel pipeline. The contract
// under test everywhere below: sharded accumulation + deterministic
// merge is BIT-identical to the sequential scan, at any shard count.
// ---------------------------------------------------------------

void
expectSummariesIdentical(const EpochSummary &a, const EpochSummary &b)
{
    EXPECT_EQ(a.totalEpochs, b.totalEpochs);
    EXPECT_EQ(a.totalTransactions, b.totalTransactions);
    // Bit-identical doubles, not just approximately equal: the
    // ratios must be derived from identical integer totals.
    EXPECT_EQ(a.epochsPerSecond, b.epochsPerSecond);
    EXPECT_EQ(a.singletonFraction, b.singletonFraction);
    EXPECT_EQ(a.singletonUnder10B, b.singletonUnder10B);
    EXPECT_EQ(a.durabilityFenceFraction, b.durabilityFenceFraction);
    EXPECT_EQ(a.epochSizes.values(), b.epochSizes.values());
    EXPECT_EQ(a.epochsPerTx.values(), b.epochsPerTx.values());
    EXPECT_EQ(a.singletonBytes.values(), b.singletonBytes.values());
}

void
expectResultsIdentical(const AnalysisResult &a, const AnalysisResult &b)
{
    EXPECT_EQ(a.threadCount, b.threadCount);
    EXPECT_EQ(a.totalEvents, b.totalEvents);
    EXPECT_EQ(a.firstTick, b.firstTick);
    EXPECT_EQ(a.lastTick, b.lastTick);
    expectSummariesIdentical(a.epochs, b.epochs);
    EXPECT_EQ(a.dependencies.totalEpochs, b.dependencies.totalEpochs);
    EXPECT_EQ(a.dependencies.selfDependent,
              b.dependencies.selfDependent);
    EXPECT_EQ(a.dependencies.crossDependent,
              b.dependencies.crossDependent);
    EXPECT_EQ(a.mix.pmAccesses, b.mix.pmAccesses);
    EXPECT_EQ(a.mix.dramAccesses, b.mix.dramAccesses);
    EXPECT_EQ(a.nti.cacheableStores, b.nti.cacheableStores);
    EXPECT_EQ(a.nti.ntStores, b.nti.ntStores);
    EXPECT_EQ(a.nti.cacheableBytes, b.nti.cacheableBytes);
    EXPECT_EQ(a.nti.ntBytes, b.nti.ntBytes);
    EXPECT_EQ(a.amplification.userBytes, b.amplification.userBytes);
    EXPECT_EQ(a.amplification.logBytes, b.amplification.logBytes);
    EXPECT_EQ(a.amplification.allocBytes,
              b.amplification.allocBytes);
    EXPECT_EQ(a.amplification.txMetaBytes,
              b.amplification.txMetaBytes);
    EXPECT_EQ(a.amplification.fsMetaBytes,
              b.amplification.fsMetaBytes);
}

core::RunResult
recordedApp(const std::string &name, std::uint64_t ops = 120)
{
    core::AppConfig config;
    config.threads = 4;
    config.opsPerThread = ops;
    config.poolBytes = 192 << 20;
    core::RunResult result = core::runApp(name, config);
    EXPECT_TRUE(result.verified);
    return result;
}

TEST(ThreadEpochAccumulator, ChunkedFeedMatchesOneShot)
{
    // Chunk boundaries must not affect reconstruction: feed the same
    // stream in 3-event chunks and in one shot.
    std::vector<TraceEvent> events;
    for (Tick t = 0; t < 40; t++) {
        if (t % 5 == 4)
            events.push_back(ev(100 + t, EventKind::Fence));
        else
            events.push_back(
                ev(100 + t, EventKind::PmStore, (t % 7) * 64));
    }

    ThreadEpochAccumulator one(3);
    one.addChunk(events.data(), events.size());

    ThreadEpochAccumulator chunked(3);
    for (std::size_t i = 0; i < events.size(); i += 3) {
        chunked.addChunk(events.data() + i,
                         std::min<std::size_t>(3, events.size() - i));
    }

    ASSERT_EQ(one.epochs().size(), chunked.epochs().size());
    for (std::size_t i = 0; i < one.epochs().size(); i++) {
        EXPECT_EQ(one.epochs()[i].lines, chunked.epochs()[i].lines);
        EXPECT_EQ(one.epochs()[i].startTs, chunked.epochs()[i].startTs);
        EXPECT_EQ(one.epochs()[i].endTs, chunked.epochs()[i].endTs);
        EXPECT_EQ(one.epochs()[i].storeBytes,
                  chunked.epochs()[i].storeBytes);
    }
}

TEST(EpochStatsAccumulator, ShardedMergeMatchesSequential)
{
    core::RunResult run = recordedApp("hashmap");
    const trace::TraceSet &traces = run.runtime->traces();
    EpochBuilder builder(traces);
    const EpochSummary sequential = summarizeEpochs(builder, traces);

    for (const std::size_t shards : {2u, 4u, 8u}) {
        const auto ranges =
            shardRanges(builder.epochs().size(), shards);
        EpochStatsAccumulator merged;
        for (const auto &range : ranges) {
            EpochStatsAccumulator part;
            for (std::size_t i = range.begin; i < range.end; i++)
                part.addEpoch(builder.epochs()[i]);
            merged.merge(part);
        }
        for (const TxInfo &tx : builder.transactions())
            merged.addTransaction(tx);
        expectSummariesIdentical(
            merged.finalize(traces.firstTick(), traces.lastTick()),
            sequential);
    }
}

TEST(DependencyShard, LineShardedJoinMatchesSequential)
{
    // Two threads hammering overlapping lines produce both self and
    // cross dependencies; the line-sharded scan must reproduce the
    // sequential flags exactly at any shard count.
    core::RunResult run = recordedApp("ctree");
    EpochBuilder builder(run.runtime->traces());
    const DependencySummary sequential =
        analyzeDependencies(builder);
    ASSERT_GT(sequential.totalEpochs, 0u);

    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
        DependencyShard merged;
        for (std::size_t s = 0; s < shards; s++) {
            DependencyShard part;
            part.scan(builder.epochs(), kDependencyWindow, s,
                      shards);
            merged.merge(part);
        }
        const DependencySummary joined = merged.summarize();
        EXPECT_EQ(joined.totalEpochs, sequential.totalEpochs);
        EXPECT_EQ(joined.selfDependent, sequential.selfDependent);
        EXPECT_EQ(joined.crossDependent, sequential.crossDependent);
    }
}

TEST(Pipeline, ParallelBitIdenticalToSequentialOnAppTraces)
{
    // The headline guarantee: for real recorded app traces spanning
    // all three access layers, analyze with 2/4/8 jobs == 1 job.
    for (const char *app : {"hashmap", "vacation", "nfs"}) {
        core::RunResult run = recordedApp(app, 80);
        const trace::TraceSet &traces = run.runtime->traces();

        const AnalysisResult sequential = analyzeTraces(traces);
        EXPECT_GT(sequential.epochs.totalEpochs, 0u);
        for (const unsigned jobs : {2u, 4u, 8u}) {
            AnalysisOptions options;
            options.jobs = jobs;
            expectResultsIdentical(analyzeTraces(traces, options),
                                   sequential);
        }
    }
}

TEST(Pipeline, MatchesLegacySequentialAnalyses)
{
    core::RunResult run = recordedApp("redis");
    const trace::TraceSet &traces = run.runtime->traces();

    EpochBuilder builder(traces);
    const EpochSummary summary = summarizeEpochs(builder, traces);
    const DependencySummary deps = analyzeDependencies(builder);
    const AccessMix mix = computeAccessMix(traces);

    AnalysisOptions options;
    options.jobs = 4;
    const AnalysisResult result = analyzeTraces(traces, options);
    expectSummariesIdentical(result.epochs, summary);
    EXPECT_EQ(result.dependencies.selfDependent, deps.selfDependent);
    EXPECT_EQ(result.dependencies.crossDependent,
              deps.crossDependent);
    EXPECT_EQ(result.mix.pmAccesses, mix.pmAccesses);
    EXPECT_EQ(result.mix.dramAccesses, mix.dramAccesses);
}

TEST(Pipeline, FileStreamingMatchesInMemory)
{
    core::RunResult run = recordedApp("echo", 60);
    const trace::TraceSet &traces = run.runtime->traces();
    const std::string path = "/tmp/whisper_pipeline_stream.bin";
    ASSERT_TRUE(trace::writeTraceFile(path, traces));

    // Reference: load the file whole, analyze in memory.
    trace::TraceSet loaded;
    ASSERT_TRUE(trace::readTraceFile(path, loaded));
    const AnalysisResult inMemory = analyzeTraces(loaded);

    for (const unsigned jobs : {1u, 4u}) {
        AnalysisOptions options;
        options.jobs = jobs;
        AnalysisResult streamed;
        ASSERT_TRUE(analyzeTraceFile(path, streamed, options));
        expectResultsIdentical(streamed, inMemory);
    }
    std::remove(path.c_str());

    AnalysisResult missing;
    EXPECT_FALSE(analyzeTraceFile("/tmp/definitely_missing_whisper",
                                  missing));
}

TEST(Pipeline, HarnessAnalyzeRunMatchesDirectCall)
{
    core::RunResult run = recordedApp("hashmap", 60);
    const AnalysisResult direct =
        analyzeTraces(run.runtime->traces());
    expectResultsIdentical(core::analyzeRun(run, 4), direct);
}

} // namespace
} // namespace whisper::analysis

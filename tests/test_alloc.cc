/**
 * @file
 * Unit and property tests for the three persistent allocators.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "alloc/buddy_alloc.hh"
#include "alloc/nvml_alloc.hh"
#include "alloc/slab_alloc.hh"
#include "common/logical_clock.hh"

namespace whisper::alloc
{
namespace
{

struct AllocWorld
{
    pm::PmPool pool{32 << 20};
    LogicalClock clock;
    trace::TraceBuffer tb{0};
    pm::PmContext ctx{pool, clock, 0, &tb};
};

// ---------------------------------------------------------------- buddy

TEST(Buddy, AllocFreeRoundTrip)
{
    AllocWorld w;
    BuddyAllocator heap(w.ctx, 0, 1 << 20);
    const Addr a = heap.alloc(w.ctx, 100);
    ASSERT_NE(a, kNullAddr);
    EXPECT_EQ(heap.state(w.ctx, a), BlockState::Volatile);
    heap.setState(w.ctx, a, BlockState::Persistent);
    EXPECT_EQ(heap.state(w.ctx, a), BlockState::Persistent);
    heap.free(w.ctx, a);
    EXPECT_EQ(heap.stats().allocs, 1u);
    EXPECT_EQ(heap.stats().frees, 1u);
}

TEST(Buddy, DistinctPayloads)
{
    AllocWorld w;
    BuddyAllocator heap(w.ctx, 0, 1 << 20);
    std::set<Addr> seen;
    for (int i = 0; i < 200; i++) {
        const Addr a = heap.alloc(w.ctx, 48);
        ASSERT_NE(a, kNullAddr);
        EXPECT_TRUE(seen.insert(a).second);
    }
}

TEST(Buddy, CoalescingRestoresBigBlocks)
{
    AllocWorld w;
    BuddyAllocator heap(w.ctx, 0, 1 << 16);
    std::vector<Addr> blocks;
    for (int i = 0; i < 64; i++) {
        const Addr a = heap.alloc(w.ctx, 48);
        ASSERT_NE(a, kNullAddr);
        blocks.push_back(a);
    }
    for (const Addr a : blocks)
        heap.free(w.ctx, a);
    EXPECT_GT(heap.stats().coalesces, 0u);
    // After everything is freed, a max-size alloc must succeed again.
    const Addr big = heap.alloc(w.ctx, (1 << 16) - 64);
    EXPECT_NE(big, kNullAddr);
}

TEST(Buddy, ExhaustionReturnsNull)
{
    AllocWorld w;
    BuddyAllocator heap(w.ctx, 0, 4096);
    std::uint64_t got = 0;
    while (heap.alloc(w.ctx, 48) != kNullAddr)
        got++;
    EXPECT_GT(got, 0u);
    EXPECT_EQ(heap.alloc(w.ctx, 48), kNullAddr);
    EXPECT_GT(heap.stats().failedAllocs, 0u);
}

TEST(Buddy, RecoveryReclaimsVolatileBlocks)
{
    AllocWorld w;
    BuddyAllocator heap(w.ctx, 0, 1 << 18);
    const Addr committed = heap.alloc(w.ctx, 64);
    heap.setState(w.ctx, committed, BlockState::Persistent);
    const Addr in_flight = heap.alloc(w.ctx, 64);
    ASSERT_NE(in_flight, kNullAddr);

    w.pool.crashHard();
    w.ctx.resetPendingState();
    BuddyAllocator recovered(0, 1 << 18);
    recovered.recover(w.ctx);

    // The committed block survived; the in-flight one was reclaimed.
    EXPECT_EQ(recovered.state(w.ctx, committed),
              BlockState::Persistent);
    EXPECT_EQ(recovered.state(w.ctx, in_flight), BlockState::Free);
}

TEST(Buddy, RecoveryPreservesFreeSpaceAccounting)
{
    AllocWorld w;
    BuddyAllocator heap(w.ctx, 0, 1 << 18);
    std::vector<Addr> keep;
    for (int i = 0; i < 32; i++) {
        const Addr a = heap.alloc(w.ctx, 100);
        heap.setState(w.ctx, a, BlockState::Persistent);
        keep.push_back(a);
    }
    w.pool.crashHard();
    w.ctx.resetPendingState();
    BuddyAllocator recovered(0, 1 << 18);
    recovered.recover(w.ctx);
    EXPECT_EQ(recovered.stats().bytesLive, 32u * 128);
    // New allocations never overlap the kept blocks.
    std::set<Addr> kept(keep.begin(), keep.end());
    for (int i = 0; i < 32; i++) {
        const Addr a = recovered.alloc(w.ctx, 100);
        ASSERT_NE(a, kNullAddr);
        EXPECT_EQ(kept.count(a), 0u);
    }
}

TEST(Buddy, HeaderWritesAreAllocMetaEpochs)
{
    AllocWorld w;
    BuddyAllocator heap(w.ctx, 0, 1 << 18);
    const auto before = w.tb.counters().fences;
    heap.alloc(w.ctx, 64);
    // Splitting from the top order generates one header epoch per
    // split plus the final VOLATILE header write.
    EXPECT_GT(w.tb.counters().fences, before);
    EXPECT_GT(w.tb.counters()
                  .pmBytesByClass[static_cast<int>(
                      trace::DataClass::AllocMeta)],
              0u);
}

// ----------------------------------------------------------------- slab

TEST(Slab, ClassSelection)
{
    AllocWorld w;
    SlabAllocator slab(w.ctx, 0, 8 << 20);
    const Addr small = slab.alloc(w.ctx, 10);
    const Addr large = slab.alloc(w.ctx, 3000);
    ASSERT_NE(small, kNullAddr);
    ASSERT_NE(large, kNullAddr);
    EXPECT_EQ(slab.allocatedIn(0), 1u); // 64B class
    EXPECT_EQ(slab.allocatedIn(6), 1u); // 4096B class
}

TEST(Slab, TooLargeFails)
{
    AllocWorld w;
    SlabAllocator slab(w.ctx, 0, 8 << 20);
    EXPECT_EQ(slab.alloc(w.ctx, 8192), kNullAddr);
}

TEST(Slab, FreeAndReuse)
{
    AllocWorld w;
    SlabAllocator slab(w.ctx, 0, 8 << 20);
    const Addr a = slab.alloc(w.ctx, 64);
    slab.free(w.ctx, a);
    EXPECT_FALSE(slab.isAllocated(a));
    // Next-fit cursor moves on, but the bit is reusable.
    std::set<Addr> seen;
    bool reused = false;
    for (int i = 0; i < 100000 && !reused; i++) {
        const Addr b = slab.alloc(w.ctx, 64);
        if (b == kNullAddr)
            break;
        reused = b == a;
    }
    EXPECT_TRUE(reused);
}

TEST(Slab, RecoveryRebuildsFromBitmap)
{
    AllocWorld w;
    SlabAllocator slab(w.ctx, 0, 8 << 20);
    const Addr a = slab.alloc(w.ctx, 64);
    const Addr b = slab.alloc(w.ctx, 200);
    (void)b;
    slab.free(w.ctx, a);

    w.pool.crashHard();
    w.ctx.resetPendingState();
    SlabAllocator recovered(0, 8 << 20);
    recovered.recover(w.ctx);
    EXPECT_FALSE(recovered.isAllocated(a));
    EXPECT_TRUE(recovered.isAllocated(b));
    EXPECT_EQ(recovered.stats().bytesLive, 256u);
}

TEST(Slab, LeaksOnCrashBeforeLinking)
{
    // The documented Mnemosyne trade-off: a block allocated (bitmap
    // durable) but never linked by the crashed application stays
    // allocated after recovery — a leak, not an inconsistency.
    AllocWorld w;
    SlabAllocator slab(w.ctx, 0, 8 << 20);
    const Addr leaked = slab.alloc(w.ctx, 64);
    w.pool.crashHard();
    w.ctx.resetPendingState();
    SlabAllocator recovered(0, 8 << 20);
    recovered.recover(w.ctx);
    EXPECT_TRUE(recovered.isAllocated(leaked));
}

TEST(SlabDimmBalance, SpreadsAllocationsAcrossDimms)
{
    // Coarse interleave (64 KiB chunks over 4 DIMMs): next-fit would
    // place consecutive 64 B blocks on one DIMM; balanced placement
    // must deal them round-robin across the least-loaded DIMMs.
    AllocWorld w;
    SlabAllocator slab(w.ctx, 0, 16 << 20);
    const DimmConfig dimms{4, 1024};
    slab.enableDimmBalance(dimms);

    std::vector<Addr> blocks;
    for (int i = 0; i < 16; i++) {
        const Addr a = slab.alloc(w.ctx, 64);
        ASSERT_NE(a, kNullAddr);
        blocks.push_back(a);
    }
    const auto &live = slab.dimmLiveBlocks();
    for (unsigned d = 0; d < dimms.dimms(); d++)
        EXPECT_EQ(live[d], 4u) << "dimm " << d;

    // free() keeps the per-DIMM live counts in step.
    for (const Addr a : blocks)
        slab.free(w.ctx, a);
    for (unsigned d = 0; d < dimms.dimms(); d++)
        EXPECT_EQ(live[d], 0u) << "dimm " << d;
}

TEST(SlabDimmBalance, DefaultPathKeepsNextFitOrder)
{
    // Without opting in, allocation order must stay the historical
    // next-fit sequence (consecutive blocks) and the per-DIMM counts
    // must stay untouched.
    AllocWorld w;
    SlabAllocator slab(w.ctx, 0, 8 << 20);
    Addr prev = slab.alloc(w.ctx, 64);
    ASSERT_NE(prev, kNullAddr);
    for (int i = 0; i < 32; i++) {
        const Addr a = slab.alloc(w.ctx, 64);
        ASSERT_NE(a, kNullAddr);
        EXPECT_EQ(a, prev + 64);
        prev = a;
    }
    for (const std::uint64_t n : slab.dimmLiveBlocks())
        EXPECT_EQ(n, 0u);
}

TEST(SlabDimmBalance, RecoveryRecountsDimmLive)
{
    AllocWorld w;
    const DimmConfig dimms{4, 1024};
    SlabAllocator slab(w.ctx, 0, 16 << 20);
    slab.enableDimmBalance(dimms);
    for (int i = 0; i < 8; i++)
        ASSERT_NE(slab.alloc(w.ctx, 64), kNullAddr);

    w.pool.crashHard();
    w.ctx.resetPendingState();
    SlabAllocator recovered(0, 16 << 20);
    recovered.enableDimmBalance(dimms);
    recovered.recover(w.ctx);
    EXPECT_EQ(recovered.dimmLiveBlocks(), slab.dimmLiveBlocks());
}

TEST(Slab, ForEachAllocatedVisitsAll)
{
    AllocWorld w;
    SlabAllocator slab(w.ctx, 0, 8 << 20);
    std::set<Addr> expect;
    for (int i = 0; i < 10; i++)
        expect.insert(slab.alloc(w.ctx, 64));
    std::set<Addr> got;
    slab.forEachAllocated([&](Addr a, std::size_t) { got.insert(a); });
    EXPECT_EQ(got, expect);
}

// ----------------------------------------------------------------- nvml

TEST(NvmlAlloc, AllocFreeNoLiveRecords)
{
    AllocWorld w;
    const Addr log = 0;
    const Addr base = NvmlAllocator::logBytes();
    NvmlAllocator heap(w.ctx, base, 8 << 20, log);
    const Addr a = heap.alloc(w.ctx, 64);
    ASSERT_NE(a, kNullAddr);
    EXPECT_EQ(heap.liveLogRecords(w.ctx), 0u);
    heap.free(w.ctx, a);
    EXPECT_EQ(heap.liveLogRecords(w.ctx), 0u);
}

TEST(NvmlAlloc, MoreEpochsThanSlab)
{
    // The redo-logged allocator costs three epochs per mutation where
    // the Mnemosyne slab costs one (paper §5.2 amplification).
    AllocWorld w;
    SlabAllocator slab(w.ctx, 0, 4 << 20);
    const auto slab_fences_before = w.tb.counters().fences;
    slab.alloc(w.ctx, 64);
    const auto slab_fences =
        w.tb.counters().fences - slab_fences_before;

    const Addr log = 8 << 20;
    NvmlAllocator nheap(w.ctx, (8 << 20) + NvmlAllocator::logBytes(),
                        4 << 20, log);
    const auto nvml_fences_before = w.tb.counters().fences;
    nheap.alloc(w.ctx, 64);
    const auto nvml_fences =
        w.tb.counters().fences - nvml_fences_before;

    EXPECT_EQ(slab_fences, 1u);
    EXPECT_EQ(nvml_fences, 3u);
}

TEST(NvmlAlloc, RecoveryReplaysTornMutation)
{
    AllocWorld w;
    const Addr log = 0;
    const Addr base = NvmlAllocator::logBytes();
    NvmlAllocator heap(w.ctx, base, 8 << 20, log);
    const Addr a = heap.alloc(w.ctx, 64);
    ASSERT_NE(a, kNullAddr);

    // Simulate the torn window: redo record durable, bitmap mutation
    // lost. Manually rewrite the record as valid again and wipe the
    // bitmap word's durable copy by crashing right after a fresh
    // (unfenced) clearing store.
    // Simplest equivalent: write a live record directly.
    AllocRedoRecord rec{};
    w.ctx.load(log, &rec, sizeof(rec));
    rec.valid = 1;
    w.ctx.store(log, &rec, sizeof(rec), pm::DataClass::Log);
    w.ctx.flush(log, sizeof(rec));
    w.ctx.fence();
    // Zero the bitmap word durably to "lose" the mutation.
    const std::uint64_t zero = 0;
    w.ctx.store(rec.wordOff, &zero, 8, pm::DataClass::AllocMeta);
    w.ctx.flush(rec.wordOff, 8);
    w.ctx.fence();
    w.pool.crashHard();
    w.ctx.resetPendingState();

    NvmlAllocator recovered(base, 8 << 20, log);
    recovered.recover(w.ctx);
    EXPECT_TRUE(recovered.isAllocated(a));
    EXPECT_EQ(recovered.liveLogRecords(w.ctx), 0u);
}

// --------------------------------------------------- property sweeps

class AllocCrashSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AllocCrashSweep, BuddyRecoveryAlwaysConsistent)
{
    const std::uint64_t seed = GetParam();
    AllocWorld w;
    BuddyAllocator heap(w.ctx, 0, 1 << 18);
    Rng rng(seed);
    std::vector<Addr> live;
    for (int i = 0; i < 120; i++) {
        if (!live.empty() && rng.chance(0.4)) {
            const std::size_t idx = rng.next(live.size());
            heap.free(w.ctx, live[idx]);
            live[idx] = live.back();
            live.pop_back();
        } else {
            const Addr a = heap.alloc(w.ctx, 32 + rng.next(400));
            if (a == kNullAddr)
                continue;
            if (rng.chance(0.8)) {
                heap.setState(w.ctx, a, BlockState::Persistent);
                live.push_back(a);
            }
            // else: leave VOLATILE (simulates crash mid-transaction)
        }
    }
    w.pool.crash(rng, 0.5);
    w.ctx.resetPendingState();
    BuddyAllocator recovered(0, 1 << 18);
    recovered.recover(w.ctx);
    // Allocations after recovery never overlap surviving blocks.
    std::set<Addr> occupied;
    for (const Addr a : live) {
        if (recovered.state(w.ctx, a) == BlockState::Persistent)
            occupied.insert(a);
    }
    for (int i = 0; i < 50; i++) {
        const Addr a = recovered.alloc(w.ctx, 64);
        if (a == kNullAddr)
            break;
        EXPECT_EQ(occupied.count(a), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocCrashSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace whisper::alloc

/**
 * @file
 * Integration tests: every WHISPER application runs, verifies its own
 * invariants, produces the expected trace signature, and survives
 * adversarial crash + recovery (parameterized seed sweep).
 */

#include <gtest/gtest.h>

#include "analysis/access_mix.hh"
#include "analysis/epoch_stats.hh"
#include "core/harness.hh"

namespace whisper
{
namespace
{

using core::AppConfig;
using core::RunResult;

AppConfig
smallConfig()
{
    AppConfig config;
    config.threads = 4;
    config.opsPerThread = 120;
    config.poolBytes = 192 << 20;
    config.seed = 7;
    return config;
}

TEST(AppRegistry, AllSuiteWorkloadsRegistered)
{
    const auto names = core::registeredApps();
    const std::vector<std::string> expect = {
        "ctree", "echo", "exim", "halo-hashmap", "hashmap",
        "memcached", "mod-hashmap", "mod-vector", "mysql", "nfs",
        "redis", "tpcc", "vacation", "ycsb"};
    EXPECT_EQ(names, expect);
}

class AppRun : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppRun, RunsAndVerifies)
{
    RunResult result = core::runApp(GetParam(), smallConfig());
    EXPECT_TRUE(result.verified) << GetParam();
    // Every app produces PM writes, fences and transactions.
    const auto counters = result.runtime->traces().totalCounters();
    EXPECT_GT(counters.pmWrites(), 0u) << GetParam();
    EXPECT_GT(counters.fences, 0u) << GetParam();
    analysis::EpochBuilder builder(result.runtime->traces());
    EXPECT_GT(builder.epochCount(), 0u) << GetParam();
    EXPECT_GT(builder.transactions().size(), 0u) << GetParam();
}

TEST_P(AppRun, SurvivesHardCrash)
{
    RunResult result = core::runApp(GetParam(), smallConfig());
    ASSERT_TRUE(result.verified);
    result.runtime->crashHard();
    result.app->recover(*result.runtime);
    const core::VerifyReport invariants =
        result.app->checkRecoveryInvariants(*result.runtime);
    EXPECT_TRUE(invariants.ok())
        << GetParam() << ": " << invariants.describe();
    const core::VerifyReport recovered =
        result.app->verifyRecovered(*result.runtime);
    EXPECT_TRUE(recovered.ok())
        << GetParam() << ": " << recovered.describe();
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AppRun,
    ::testing::Values("echo", "ycsb", "tpcc", "redis", "ctree",
                      "hashmap", "vacation", "memcached", "nfs",
                      "exim", "mysql", "mod-hashmap", "mod-vector"));

struct CrashCase
{
    std::string app;
    std::uint64_t seed;
};

class AppCrashSweep : public ::testing::TestWithParam<CrashCase>
{
};

TEST_P(AppCrashSweep, AdversarialCrashRecovery)
{
    const CrashCase &cc = GetParam();
    AppConfig config = smallConfig();
    config.opsPerThread = 60;
    config.seed = cc.seed;
    RunResult result = core::runApp(cc.app, config);
    ASSERT_TRUE(result.verified);
    core::CrashOptions opts;
    opts.seed = cc.seed * 1337 + 1;
    opts.survival = 0.5;
    const core::VerifyReport recovered =
        core::crashAndVerify(result, opts);
    EXPECT_TRUE(recovered.ok())
        << cc.app << " seed " << cc.seed << ": "
        << recovered.describe();
    // After recovery the access layer must be quiescent again: logs
    // retired, journal FREE, descriptor protocols settled.
    const core::VerifyReport invariants =
        result.app->checkRecoveryInvariants(*result.runtime);
    EXPECT_TRUE(invariants.ok())
        << cc.app << " seed " << cc.seed << ": "
        << invariants.describe();
}

std::vector<CrashCase>
crashCases()
{
    std::vector<CrashCase> cases;
    for (const char *app :
         {"echo", "ycsb", "tpcc", "redis", "ctree", "hashmap",
          "vacation", "memcached", "nfs", "exim", "mysql",
          "mod-hashmap", "mod-vector"}) {
        for (std::uint64_t seed : {1ull, 2ull, 3ull})
            cases.push_back({app, seed});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AppCrashSweep, ::testing::ValuesIn(crashCases()),
    [](const ::testing::TestParamInfo<CrashCase> &info) {
        std::string name = info.param.app + "_s" +
                           std::to_string(info.param.seed);
        for (char &ch : name) // gtest names reject '-'
            if (ch == '-')
                ch = '_';
        return name;
    });

// --------------------------------------------- behavioural signatures

TEST(AppBehaviour, FsAppsUseNtisHeavily)
{
    AppConfig config = smallConfig();
    config.opsPerThread = 40;
    RunResult nfs = core::runApp("nfs", config);
    const auto nti = analysis::computeNtiUsage(nfs.runtime->traces());
    // PMFS writes user data and zero pages with NTIs (paper: ~96%).
    EXPECT_GT(nti.ntiFraction(), 0.5);
}

TEST(AppBehaviour, NvmlAmplificationExceedsMnemosyne)
{
    AppConfig config = smallConfig();
    config.opsPerThread = 80;
    RunResult hashmap = core::runApp("hashmap", config); // NVML
    RunResult vacation = core::runApp("vacation", config); // Mnemosyne
    const auto nvml_amp =
        analysis::computeAmplification(hashmap.runtime->traces());
    const auto mne_amp =
        analysis::computeAmplification(vacation.runtime->traces());
    // Paper §5.2: NVML ~10x, Mnemosyne 3-6x.
    EXPECT_GT(nvml_amp.ratio(), mne_amp.ratio());
}

TEST(AppBehaviour, LibraryEpochsAreMostlySingletons)
{
    AppConfig config = smallConfig();
    config.opsPerThread = 100;
    RunResult result = core::runApp("hashmap", config);
    analysis::EpochBuilder builder(result.runtime->traces());
    const auto sum =
        analysis::summarizeEpochs(builder, result.runtime->traces());
    // Paper Figure 4: ~75% singletons for library apps.
    EXPECT_GT(sum.singletonFraction, 0.5);
}

TEST(AppBehaviour, PmfsEpochsIncludeBlockSized)
{
    AppConfig config = smallConfig();
    config.opsPerThread = 30;
    RunResult result = core::runApp("nfs", config);
    analysis::EpochBuilder builder(result.runtime->traces());
    const auto sum =
        analysis::summarizeEpochs(builder, result.runtime->traces());
    // Paper Figure 4: PMFS has a >=64-line mode from 4 KB block
    // writes.
    EXPECT_GT(sum.epochSizes.fractionIn(64, ~std::uint64_t(0)), 0.02);
}

TEST(AppBehaviour, EchoTransactionsAreLarge)
{
    AppConfig config = smallConfig();
    config.opsPerThread = 96;
    RunResult result = core::runApp("echo", config);
    analysis::EpochBuilder builder(result.runtime->traces());
    const auto sum =
        analysis::summarizeEpochs(builder, result.runtime->traces());
    // Paper Figure 3: echo has the largest transactions (median 307
    // epochs; ours must at least be far above the library apps).
    EXPECT_GT(sum.epochsPerTx.median(), 50u);
}

TEST(AppBehaviour, DramDominatesWhenInstrumented)
{
    AppConfig config = smallConfig();
    config.opsPerThread = 60;
    config.recordVolatile = true;
    RunResult result = core::runApp("redis", config);
    const auto mix =
        analysis::computeAccessMix(result.runtime->traces());
    // Paper Figure 6: PM is a small minority of accesses.
    EXPECT_LT(mix.pmFraction(), 0.5);
}

} // namespace
} // namespace whisper

/**
 * @file
 * Unit tests for the YCSB-style workload subsystem: the mergeable
 * latency histogram, the key-distribution generators and the unified
 * driver's determinism contract (same seed => same digest, histogram
 * merge independent of order).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "workload/keydist.hh"
#include "workload/latency_histogram.hh"
#include "workload/workload.hh"

namespace whisper::workload
{
namespace
{

// ---- LatencyHistogram --------------------------------------------------

TEST(LatencyHistogram, BucketRoundTrip)
{
    // Every bucket's lower bound maps back to that bucket, and values
    // one below the next bound stay in it: the mapping is a partition.
    for (unsigned idx = 0; idx + 1 < LatencyHistogram::kBuckets;
         idx++) {
        const Tick lo = LatencyHistogram::bucketLowerBound(idx);
        const Tick next = LatencyHistogram::bucketLowerBound(idx + 1);
        ASSERT_LT(lo, next);
        EXPECT_EQ(LatencyHistogram::bucketIndex(lo), idx);
        EXPECT_EQ(LatencyHistogram::bucketIndex(next - 1), idx);
    }
}

TEST(LatencyHistogram, QuantileBounds)
{
    LatencyHistogram h;
    EXPECT_EQ(h.quantile(0.5), 0u);
    for (Tick v = 1; v <= 1000; v++)
        h.record(v);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.minValue(), 1u);
    EXPECT_EQ(h.maxValue(), 1000u);
    EXPECT_NEAR(h.mean(), 500.5, 1e-9);
    // Quantiles report bucket lower bounds: within one sub-bucket
    // (1/16) of the exact rank value, never above it.
    const Tick p50 = h.quantile(0.50);
    EXPECT_LE(p50, 500u);
    EXPECT_GE(p50, 500u - 500u / 16);
    const Tick p99 = h.quantile(0.99);
    EXPECT_LE(p99, 990u);
    EXPECT_GE(p99, 990u - 990u / 16);
    EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
    EXPECT_EQ(LatencyHistogram::bucketIndex(h.quantile(1.0)),
              LatencyHistogram::bucketIndex(1000u));
}

TEST(LatencyHistogram, QuantileRankIsIntegerExact)
{
    // The rank is ceil(q * count) computed in integer arithmetic: a
    // q infinitesimally above k/count must select sample k+1, with no
    // double-rounding drift. With two samples, anything in (0, 0.5]
    // is the first and anything in (0.5, 1] the second.
    LatencyHistogram h;
    h.record(1);
    h.record(1000);
    EXPECT_EQ(LatencyHistogram::bucketIndex(h.quantile(0.5)),
              LatencyHistogram::bucketIndex(1u));
    EXPECT_EQ(LatencyHistogram::bucketIndex(
                  h.quantile(std::nextafter(0.5, 1.0))),
              LatencyHistogram::bucketIndex(1000u));
    // Degenerate q values stay in range.
    EXPECT_EQ(LatencyHistogram::bucketIndex(h.quantile(1e-300)),
              LatencyHistogram::bucketIndex(1u));
    EXPECT_EQ(LatencyHistogram::bucketIndex(h.quantile(1.0)),
              LatencyHistogram::bucketIndex(1000u));
}

TEST(LatencyHistogram, MergeAssociativeAndCommutative)
{
    Rng rng(7);
    std::vector<LatencyHistogram> parts(3);
    for (unsigned p = 0; p < 3; p++)
        for (int i = 0; i < 500; i++)
            parts[p].record(rng.next(1ull << (10 + 4 * p)));

    // (a + b) + c
    LatencyHistogram left;
    left.merge(parts[0]);
    left.merge(parts[1]);
    left.merge(parts[2]);
    // c + (b + a)
    LatencyHistogram inner;
    inner.merge(parts[1]);
    inner.merge(parts[0]);
    LatencyHistogram right;
    right.merge(parts[2]);
    right.merge(inner);

    EXPECT_EQ(left.digest(), right.digest());
    EXPECT_EQ(left.count(), 1500u);
    for (double q : {0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(left.quantile(q), right.quantile(q));
}

TEST(LatencyHistogram, DigestDiscriminates)
{
    LatencyHistogram a, b;
    for (Tick v = 0; v < 100; v++) {
        a.record(v);
        b.record(v);
    }
    EXPECT_EQ(a.digest(), b.digest());
    b.record(100);
    EXPECT_NE(a.digest(), b.digest());
}

// ---- MixSpec -----------------------------------------------------------

TEST(MixSpec, NamedMixes)
{
    MixSpec a = MixSpec::ycsb('A');
    EXPECT_DOUBLE_EQ(a.read, 0.5);
    EXPECT_DOUBLE_EQ(a.update, 0.5);
    MixSpec d = MixSpec::ycsb('D');
    EXPECT_DOUBLE_EQ(d.insert, 0.05);
    MixSpec e = MixSpec::ycsb('E');
    EXPECT_DOUBLE_EQ(e.scan, 0.95);
    MixSpec f = MixSpec::ycsb('F');
    EXPECT_DOUBLE_EQ(f.rmw, 0.5);
}

TEST(MixSpec, ParseNamedAndCustom)
{
    MixSpec m;
    EXPECT_TRUE(MixSpec::parse("b", m));
    EXPECT_DOUBLE_EQ(m.read, 0.95);
    EXPECT_TRUE(MixSpec::parse("8:1:1:0:0", m));
    EXPECT_DOUBLE_EQ(m.read, 0.8);
    EXPECT_DOUBLE_EQ(m.update, 0.1);
    EXPECT_DOUBLE_EQ(m.insert, 0.1);
    EXPECT_FALSE(MixSpec::parse("G", m));
    EXPECT_FALSE(MixSpec::parse("1:2", m));
    EXPECT_FALSE(MixSpec::parse("0:0:0:0:0", m));
    EXPECT_FALSE(MixSpec::parse("", m));
}

// ---- KeyChooser --------------------------------------------------------

core::WorkloadKeymap
keymap(std::uint64_t keys, unsigned threads, std::uint64_t inserts)
{
    core::WorkloadKeymap map;
    map.keys = keys;
    map.threads = threads;
    map.insertsPerThread = inserts;
    return map;
}

TEST(KeyChooser, SeedDeterminism)
{
    const core::WorkloadKeymap map = keymap(10000, 2, 0);
    for (KeyDist dist :
         {KeyDist::Uniform, KeyDist::Zipfian, KeyDist::Latest}) {
        KeyChooser a(dist, map, 1);
        KeyChooser b(dist, map, 1);
        Rng ra(99), rb(99), rc(100);
        KeyChooser c(dist, map, 1);
        bool diverged = false;
        for (int i = 0; i < 2000; i++) {
            const std::uint64_t ka = a.next(ra);
            EXPECT_EQ(ka, b.next(rb));
            diverged |= ka != c.next(rc);
        }
        EXPECT_TRUE(diverged) << keyDistName(dist);
    }
}

TEST(KeyChooser, KeysStayInPartition)
{
    const core::WorkloadKeymap map = keymap(9999, 3, 16);
    for (KeyDist dist :
         {KeyDist::Uniform, KeyDist::Zipfian, KeyDist::Latest}) {
        KeyChooser chooser(dist, map, 2);
        Rng rng(5);
        for (int i = 0; i < 4000; i++) {
            const std::uint64_t key = chooser.next(rng);
            const bool loaded =
                key >= map.lo(2) && key < map.lo(2) + map.perThread();
            const bool inserted =
                key >= map.insertKey(2, 0) &&
                key < map.insertKey(2, chooser.insertedCount());
            EXPECT_TRUE(loaded || inserted) << key;
            if (i % 250 == 0 &&
                chooser.insertedCount() < map.insertsPerThread)
                chooser.noteInsert();
        }
    }
}

TEST(KeyChooser, ZipfianSkewShape)
{
    const core::WorkloadKeymap map = keymap(10000, 1, 0);
    KeyChooser chooser(KeyDist::Zipfian, map, 0);
    Rng rng(11);
    std::map<std::uint64_t, std::uint64_t> freq;
    const int draws = 200000;
    for (int i = 0; i < draws; i++)
        freq[chooser.next(rng)]++;

    std::vector<std::uint64_t> counts;
    for (const auto &[key, n] : freq)
        counts.push_back(n);
    std::sort(counts.begin(), counts.end(), std::greater<>());

    // theta=0.99 zipfian over 10k keys: the hottest key draws a few
    // percent of all requests (~50x the uniform share of 0.01%), and
    // the top-10 keys together take >10%. Uniform would give every
    // key ~20 draws.
    EXPECT_GT(counts[0], draws / 200);
    std::uint64_t top10 = 0;
    for (int i = 0; i < 10; i++)
        top10 += counts[i];
    EXPECT_GT(top10, static_cast<std::uint64_t>(draws) / 10);
    // And the mass is scattered: far more distinct keys than a
    // degenerate distribution would touch.
    EXPECT_GT(freq.size(), 1000u);
}

TEST(KeyChooser, LatestFavorsRecentInserts)
{
    const core::WorkloadKeymap map = keymap(10000, 1, 64);
    KeyChooser chooser(KeyDist::Latest, map, 0);
    Rng rng(13);
    for (int i = 0; i < 50; i++)
        chooser.noteInsert();

    const std::uint64_t newest = map.insertKey(0, 49);
    std::uint64_t newest_hits = 0, loaded_hits = 0;
    const int draws = 50000;
    for (int i = 0; i < draws; i++) {
        const std::uint64_t key = chooser.next(rng);
        if (key == newest)
            newest_hits++;
        if (key < map.keys)
            loaded_hits++;
    }
    // Recency rank 0 is the newest insert: it alone draws a few
    // percent, far above the ~0.01% uniform share, and old loaded
    // keys still appear (the tail reaches them).
    EXPECT_GT(newest_hits, static_cast<std::uint64_t>(draws) / 200);
    EXPECT_GT(loaded_hits, 0u);
}

// ---- Driver ------------------------------------------------------------

WorkloadOptions
smokeOptions(const std::string &app, char mix)
{
    WorkloadOptions opts;
    opts.app = app;
    opts.mix = MixSpec::ycsb(mix);
    opts.mix.scanLen = 4;
    opts.keys = 600;
    opts.threads = 2;
    opts.opsPerThread = 60;
    opts.poolBytes = 256 << 20;
    return opts;
}

TEST(WorkloadDriver, DigestDeterministicAcrossRuns)
{
    const WorkloadOptions opts = smokeOptions("hashmap", 'A');
    const WorkloadResult a = runWorkload(opts);
    const WorkloadResult b = runWorkload(opts);
    ASSERT_TRUE(a.verified);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.json(), b.json());
    EXPECT_EQ(a.ops.total(), opts.threads * opts.opsPerThread);
    EXPECT_EQ(a.latency.count(), a.ops.total());
    EXPECT_GT(a.elapsedTicks, 0u);
    EXPECT_GE(a.totalTicks, a.elapsedTicks);
}

TEST(WorkloadDriver, SeedChangesDigest)
{
    WorkloadOptions opts = smokeOptions("hashmap", 'A');
    const WorkloadResult a = runWorkload(opts);
    opts.seed = 43;
    const WorkloadResult b = runWorkload(opts);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(WorkloadDriver, PerLayerMixSmoke)
{
    // One app per access layer through every named mix; everything
    // must verify and count exactly threads * opsPerThread operations.
    for (const char *app :
         {"ycsb", "hashmap", "memcached", "nfs", "mod-hashmap"}) {
        for (char mix : {'A', 'B', 'C', 'D', 'E', 'F'}) {
            const WorkloadResult r =
                runWorkload(smokeOptions(app, mix));
            EXPECT_TRUE(r.verified)
                << app << " mix " << mix << ":\n"
                << r.check.describe();
            EXPECT_EQ(r.ops.total(), 120u) << app << " mix " << mix;
        }
    }
}

TEST(WorkloadDriver, MixRatiosRespected)
{
    WorkloadOptions opts = smokeOptions("hashmap", 'B');
    opts.opsPerThread = 400;
    const WorkloadResult r = runWorkload(opts);
    ASSERT_TRUE(r.verified);
    // Mix B is 95/5: reads dominate, updates present, nothing else.
    EXPECT_GT(r.ops.reads, 700u);
    EXPECT_GT(r.ops.updates, 0u);
    EXPECT_EQ(r.ops.inserts, 0u);
    EXPECT_EQ(r.ops.rmws, 0u);
    EXPECT_EQ(r.ops.scans, 0u);
    // Every read targets a loaded key in this thread's partition.
    EXPECT_EQ(r.ops.readsFound, r.ops.reads);
}

TEST(WorkloadDriver, InsertsLandAndAreReadable)
{
    WorkloadOptions opts = smokeOptions("ctree", 'D');
    opts.opsPerThread = 200;
    opts.dist = KeyDist::Latest;
    const WorkloadResult r = runWorkload(opts);
    ASSERT_TRUE(r.verified);
    EXPECT_GT(r.ops.inserts, 0u);
    EXPECT_EQ(r.ops.readsFound, r.ops.reads);
}

} // namespace
} // namespace whisper::workload

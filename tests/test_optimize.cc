/**
 * @file
 * Trace-driven fence/flush optimizer tests: golden traces pinning
 * each redundancy category, determinism across job counts, agreement
 * with the runtime's flush dedupe, and the elision-enabled crashfuzz
 * smokes proving the suppressed operations were really redundant.
 */

#include <gtest/gtest.h>

#include "analysis/optimize.hh"
#include "core/harness.hh"
#include "fuzz/crash_fuzz.hh"
#include "txlib/elision.hh"

namespace whisper::analysis
{
namespace
{

using trace::DataClass;
using trace::EventKind;
using trace::FenceKind;
using trace::TraceEvent;
using trace::TraceSet;

TraceEvent
ev(Tick ts, EventKind kind, Addr addr = 0, std::uint32_t size = 8,
   DataClass cls = DataClass::User, std::uint8_t aux = 0)
{
    return TraceEvent{ts, addr, size, kind, cls, aux, 0};
}

TraceEvent
dfence(Tick ts)
{
    return ev(ts, EventKind::Fence, 0, 0, DataClass::User,
              static_cast<std::uint8_t>(FenceKind::Durability));
}

TraceEvent
ofence(Tick ts)
{
    return ev(ts, EventKind::Fence, 0, 0, DataClass::User,
              static_cast<std::uint8_t>(FenceKind::Ordering));
}

OptimizeSummary
classify(const TraceSet &set)
{
    return optimizeTraces(set).summary;
}

TEST(Optimize, FlushRedirtiedBeforeFence)
{
    // (a): the flushed line is stored again before the fence, so the
    // queued writeback persists bytes that are already stale.
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore, 0));
    b->push(ev(2, EventKind::PmFlush, 0, 64));
    b->push(ev(3, EventKind::PmStore, 0));
    b->push(dfence(4));

    const OptimizeSummary s = classify(set);
    EXPECT_EQ(s.totalFlushes, 1u);
    EXPECT_EQ(s.flushRedirtied, 1u);
    EXPECT_EQ(s.flushClean, 0u);
    EXPECT_EQ(s.redundantFlushes(), 1u);
}

TEST(Optimize, FlushRequiredWhenFenceDrainsFirst)
{
    // The same re-store after the fence is NOT redundant: the flush
    // persisted the first value before the overwrite.
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore, 0));
    b->push(ev(2, EventKind::PmFlush, 0, 64));
    b->push(dfence(3));
    b->push(ev(4, EventKind::PmStore, 0));
    b->push(ev(5, EventKind::PmFlush, 0, 64));
    b->push(dfence(6));

    const OptimizeSummary s = classify(set);
    EXPECT_EQ(s.totalFlushes, 2u);
    EXPECT_EQ(s.redundantFlushes(), 0u);
}

TEST(Optimize, FlushOfCleanLine)
{
    // (b): re-flushing a line the previous fence already persisted
    // (and flushing a never-stored line) moves no new bytes.
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore, 0));
    b->push(ev(2, EventKind::PmFlush, 0, 64));
    b->push(dfence(3));
    b->push(ev(4, EventKind::PmFlush, 0, 64));   // already persisted
    b->push(ev(5, EventKind::PmFlush, 128, 64)); // never stored
    b->push(dfence(6));

    const OptimizeSummary s = classify(set);
    EXPECT_EQ(s.totalFlushes, 3u);
    EXPECT_EQ(s.flushClean, 2u);
    EXPECT_EQ(s.flushRedirtied, 0u);
}

TEST(Optimize, OrderingFenceWithoutConflict)
{
    // (c): the epochs around the first fence touch disjoint lines, so
    // the second fence subsumes it. The trailing epoch re-touches the
    // second fence's line, keeping that one required.
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore, 0));
    b->push(ofence(2));
    b->push(ev(3, EventKind::PmStore, 64));
    b->push(ofence(4));
    b->push(ev(5, EventKind::PmStore, 64));

    const OptimizeSummary s = classify(set);
    EXPECT_EQ(s.totalFences, 2u);
    EXPECT_EQ(s.fenceNoConflict, 1u);
    EXPECT_EQ(s.fenceCoalescible, 0u);
}

TEST(Optimize, OrderingFenceWithConflictIsRequired)
{
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore, 0));
    b->push(ofence(2));
    b->push(ev(3, EventKind::PmStore, 0)); // same line: real ordering
    const OptimizeSummary s = classify(set);
    EXPECT_EQ(s.totalFences, 1u);
    EXPECT_EQ(s.fenceNoConflict, 0u);
}

TEST(Optimize, CoalescibleDurabilityPair)
{
    // (d): back-to-back durability fences inside one transaction with
    // nothing between them — the first already drained everything.
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::TxBegin, 1));
    b->push(ev(2, EventKind::PmStore, 0));
    b->push(ev(3, EventKind::PmFlush, 0, 64));
    b->push(dfence(4));
    b->push(dfence(5));
    b->push(ev(6, EventKind::TxEnd, 1));

    const OptimizeSummary s = classify(set);
    EXPECT_EQ(s.totalFences, 2u);
    EXPECT_EQ(s.fenceCoalescible, 1u);
    EXPECT_EQ(s.fenceNoConflict, 0u);
}

TEST(Optimize, EmptyEpochOutsideTxNotCoalescible)
{
    // The same empty epoch outside a transaction is left alone: the
    // pairing argument needs the transaction's commit protocol.
    TraceSet set;
    auto *b = set.createBuffer(0);
    b->push(ev(1, EventKind::PmStore, 0));
    b->push(ev(2, EventKind::PmFlush, 0, 64));
    b->push(dfence(3));
    b->push(dfence(4));
    const OptimizeSummary s = classify(set);
    EXPECT_EQ(s.fenceCoalescible, 0u);
}

TEST(Optimize, OriginAttribution)
{
    // Counts land on the byte stamped in the event, not on a global
    // bucket.
    TraceSet set;
    auto *b = set.createBuffer(0);
    TraceEvent store = ev(1, EventKind::PmStore, 0);
    TraceEvent flush = ev(2, EventKind::PmFlush, 0, 64);
    flush.origin =
        static_cast<std::uint8_t>(trace::Origin::MneCommitApply);
    TraceEvent fence = dfence(3);
    fence.origin =
        static_cast<std::uint8_t>(trace::Origin::MneCommitApply);
    b->push(store);
    b->push(flush);
    b->push(fence);

    const OptimizeSummary s = classify(set);
    const OriginCounts &c = s.byOrigin[static_cast<std::size_t>(
        trace::Origin::MneCommitApply)];
    EXPECT_EQ(c.flushes, 1u);
    EXPECT_EQ(c.fences, 1u);
    EXPECT_EQ(s.byOrigin[0].flushes, 0u);
}

TEST(Optimize, AgreesWithRuntimeFlushDedupe)
{
    // The runtime absorbs duplicate flushes of a line inside one
    // fence interval (pm_context.cc), so a store+flush+flush+fence
    // sequence must trace exactly one PmFlush — and the optimizer
    // must then find nothing to elide.
    core::Runtime rt(1 << 20, 1);
    pm::PmContext &ctx = rt.ctx(0);
    const std::uint64_t v = 9;
    ctx.store(0, &v, 8);
    ctx.flush(0, 8);
    ctx.flush(0, 8);
    ctx.fence(pm::FenceKind::Durability);

    std::uint64_t flush_events = 0;
    for (const auto &buf : rt.traces().buffers())
        for (const auto &event : buf->events())
            if (event.kind == EventKind::PmFlush)
                flush_events++;
    EXPECT_EQ(flush_events, 1u);

    const OptimizeSummary s = classify(rt.traces());
    EXPECT_EQ(s.totalFlushes, 1u);
    EXPECT_EQ(s.redundantFlushes(), 0u);
}

TEST(Optimize, DeterministicAtAnyJobs)
{
    core::AppConfig config;
    config.threads = 4;
    config.opsPerThread = 40;
    config.poolBytes = 48 << 20;
    core::RunResult result = core::runApp("vacation", config);
    ASSERT_TRUE(result.verified);

    OptimizeOptions one;
    one.jobs = 1;
    OptimizeOptions many;
    many.jobs = 4;
    const OptimizeResult a =
        optimizeTraces(result.runtime->traces(), one);
    const OptimizeResult b =
        optimizeTraces(result.runtime->traces(), many);
    EXPECT_EQ(a.totalEvents, b.totalEvents);
    EXPECT_EQ(a.summary.totalFlushes, b.summary.totalFlushes);
    EXPECT_EQ(a.summary.totalFences, b.summary.totalFences);
    EXPECT_EQ(a.summary.flushRedirtied, b.summary.flushRedirtied);
    EXPECT_EQ(a.summary.flushClean, b.summary.flushClean);
    EXPECT_EQ(a.summary.fenceNoConflict, b.summary.fenceNoConflict);
    EXPECT_EQ(a.summary.fenceCoalescible, b.summary.fenceCoalescible);
    for (std::size_t i = 0; i < trace::kOriginCount; i++) {
        EXPECT_EQ(a.summary.byOrigin[i].redundantFences,
                  b.summary.byOrigin[i].redundantFences)
            << "origin " << i;
    }
}

TEST(Optimize, FindsRedundancyInLoggingLayers)
{
    // The acceptance bar: real Mnemosyne and NVML traces must show a
    // nonzero redundant count (the txlibs' logging protocols fence
    // far more often than the data requires).
    core::AppConfig config;
    config.threads = 2;
    config.opsPerThread = 50;
    config.poolBytes = 48 << 20;
    for (const char *app : {"vacation", "hashmap"}) {
        core::RunResult result = core::runApp(app, config);
        ASSERT_TRUE(result.verified) << app;
        const OptimizeSummary s = classify(result.runtime->traces());
        EXPECT_GT(s.redundantFences() + s.redundantFlushes(), 0u)
            << app;
    }
}

TEST(Elision, ReducesPmOpsOnBothLayers)
{
    fuzz::FuzzConfig base;
    base.opsPerThread = 12;
    base.poolBytes = 24 << 20;
    fuzz::FuzzConfig elided = base;
    elided.elide = true;
    for (const char *app : {"vacation", "hashmap"}) {
        const std::uint64_t before = fuzz::profilePmOps(app, base);
        const std::uint64_t after = fuzz::profilePmOps(app, elided);
        EXPECT_LT(after, before) << app;
    }
    txlib::setElisionPolicy(txlib::kElideNone);
}

TEST(Elision, CrashfuzzSmokeMnemosyne)
{
    // The elision smoke the issue wires into ctest: the Mnemosyne app
    // must hold every recovery invariant with the full elision policy
    // active — proof the coalesced commit-apply fences were redundant.
    fuzz::SweepOptions options;
    options.apps = {"vacation"};
    options.cases = 96;
    options.config.opsPerThread = 10;
    options.config.poolBytes = 24 << 20;
    options.config.elide = true;
    options.config.faults = true;
    options.maxReproducers = 1;
    for (const auto &report : fuzz::sweep(options)) {
        EXPECT_EQ(report.violations, 0u)
            << report.app << ": "
            << (report.reproducers.empty()
                    ? "(no reproducer)"
                    : report.reproducers[0].why + " => " +
                          report.reproducers[0].command);
        EXPECT_GT(report.casesFired, 0u);
    }
    txlib::setElisionPolicy(txlib::kElideNone);
}

TEST(Elision, CrashfuzzSmokeNvml)
{
    fuzz::SweepOptions options;
    options.apps = {"hashmap"};
    options.cases = 96;
    options.config.opsPerThread = 10;
    options.config.poolBytes = 24 << 20;
    options.config.elide = true;
    options.config.faults = true;
    options.maxReproducers = 1;
    for (const auto &report : fuzz::sweep(options)) {
        EXPECT_EQ(report.violations, 0u)
            << report.app << ": "
            << (report.reproducers.empty()
                    ? "(no reproducer)"
                    : report.reproducers[0].why + " => " +
                          report.reproducers[0].command);
        EXPECT_GT(report.casesFired, 0u);
    }
    txlib::setElisionPolicy(txlib::kElideNone);
}

} // namespace
} // namespace whisper::analysis

/**
 * @file
 * A durable key-value store in ~100 lines on the NVML-style
 * transaction library — the kind of application WHISPER profiles.
 *
 * Demonstrates: pool formatting, undo-logged transactions
 * (txAlloc/addRange/commit), crash injection and re-mount recovery.
 *
 * Build & run:  ./examples/kvstore
 */

#include <cstdio>
#include <cstring>

#include "core/runtime.hh"
#include "txlib/nvml.hh"

using namespace whisper;

namespace
{

constexpr std::uint64_t kBuckets = 256;

struct Node
{
    std::uint64_t key;
    std::uint64_t value;
    Addr next;
};

struct KvRoot
{
    Addr buckets[kBuckets];
};

Addr rootOff = 0;

KvRoot *
root(pm::PmContext &ctx)
{
    return ctx.pool().at<KvRoot>(rootOff);
}

void
put(nvml::NvmlPool &pool, pm::PmContext &ctx, std::uint64_t key,
    std::uint64_t value)
{
    Addr &bucket = root(ctx)->buckets[key % kBuckets];
    // Existing key: transactional overwrite.
    for (Addr cur = bucket; cur != kNullAddr;) {
        Node *node = ctx.pool().at<Node>(cur);
        if (node->key == key) {
            nvml::TxContext tx(pool, ctx);
            tx.set(node->value, value);
            tx.commit();
            return;
        }
        cur = node->next;
    }
    // New key: allocate + link, atomically.
    nvml::TxContext tx(pool, ctx);
    const Addr off = tx.txAlloc(sizeof(Node));
    Node fresh{key, value, bucket};
    tx.directStore(off, &fresh, sizeof(fresh));
    tx.set(bucket, off);
    tx.commit();
}

bool
get(pm::PmContext &ctx, std::uint64_t key, std::uint64_t &value)
{
    for (Addr cur = root(ctx)->buckets[key % kBuckets];
         cur != kNullAddr;) {
        const Node *node = ctx.pool().at<Node>(cur);
        if (node->key == key) {
            value = node->value;
            return true;
        }
        cur = node->next;
    }
    return false;
}

} // namespace

int
main()
{
    core::Runtime rt(128 << 20, 1);
    pm::PmContext &ctx = rt.ctx(0);

    // Format: root bucket array in front, the NVML pool behind it.
    const Addr pool_base = lineBase(sizeof(KvRoot) + kCacheLineSize);
    nvml::NvmlPool pool(ctx, pool_base, (128 << 20) - pool_base, 1);
    KvRoot empty{};
    for (auto &b : empty.buckets)
        b = kNullAddr;
    ctx.store(rootOff, &empty, sizeof(empty));
    ctx.persist(rootOff, sizeof(empty));

    std::puts("inserting 1000 keys in durable transactions...");
    for (std::uint64_t k = 0; k < 1000; k++)
        put(pool, ctx, k, k * k);

    // Start one more transaction and crash in the middle of it.
    std::puts("crashing mid-transaction (key 42 -> 0xDEAD)...");
    {
        auto *tx = new nvml::TxContext(pool, ctx); // leaked: we "die"
        Addr &bucket = root(ctx)->buckets[42 % kBuckets];
        for (Addr cur = bucket; cur != kNullAddr;) {
            Node *node = ctx.pool().at<Node>(cur);
            if (node->key == 42) {
                tx->set(node->value, std::uint64_t{0xDEAD});
                break;
            }
            cur = node->next;
        }
        rt.crashHard();
    }

    std::puts("re-mounting + recovering...");
    nvml::NvmlPool again(pool_base, (128 << 20) - pool_base, 1);
    again.recover(ctx);

    std::uint64_t v = 0;
    int missing = 0;
    for (std::uint64_t k = 0; k < 1000; k++) {
        if (!get(ctx, k, v) || v != k * k)
            missing++;
    }
    std::printf("after recovery: %d of 1000 keys wrong/missing; "
                "key 42 = %llu (the in-flight 0xDEAD was rolled "
                "back)\n",
                missing,
                (unsigned long long)(get(ctx, 42, v) ? v : 0));
    return missing == 0 ? 0 : 1;
}

/**
 * @file
 * Crash-torture: run an application, then sweep adversarial power
 * failures — each seed resolves differently which unfenced cache
 * lines reached PM — and verify recovery invariants every time.
 *
 * This is the suite's crash-consistency contract made executable:
 * whatever subset of dirty lines survives, recovery must produce a
 * structurally consistent store with no torn committed data.
 *
 * Usage:  ./examples/crash_torture [app] [crashes]
 */

#include <cstdio>
#include <cstring>

#include "core/harness.hh"

using namespace whisper;

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "memcached";
    const int crashes = argc > 2 ? std::atoi(argv[2]) : 20;

    core::AppConfig config;
    config.threads = 4;
    config.opsPerThread = 150;
    config.poolBytes = 192 << 20;

    int survived = 0;
    for (int i = 0; i < crashes; i++) {
        config.seed = 1000 + i;
        core::RunResult result = core::runApp(app, config);
        if (!result.verified) {
            std::fprintf(stderr, "run %d: clean-run verification "
                                 "FAILED\n", i);
            return 1;
        }
        // Survival probability varies across the sweep, from "almost
        // nothing evicted in time" to "almost everything did".
        core::CrashOptions opts;
        opts.seed = config.seed * 7919 + i;
        opts.survival = (i % 5) * 0.25;
        const core::VerifyReport report =
            core::crashAndVerify(result, opts);
        if (report.ok()) {
            survived++;
        } else {
            std::fprintf(stderr,
                         "run %d (survival %.2f): recovery check "
                         "FAILED\n%s\n", i, opts.survival,
                         report.describe().c_str());
        }
    }
    std::printf("%s: %d/%d adversarial crashes recovered "
                "consistently\n", app.c_str(), survived, crashes);
    return survived == crashes ? 0 : 1;
}

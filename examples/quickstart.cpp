/**
 * @file
 * Quickstart: persistent memory in five minutes.
 *
 * Shows the three layers of the library on one tiny example — the
 * paper's Figure 1 running example (update a two-field structure,
 * then set a flag, never letting the flag become durable first):
 *
 *   1. native persistence (store + clwb + sfence, Figure 1a),
 *   2. the HOPS programming model (ofence/dfence, Figure 1e),
 *   3. what a crash does to unfenced data.
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>

#include "core/hops.hh"
#include "core/runtime.hh"

using namespace whisper;

namespace
{

struct Point
{
    std::uint64_t x;
    std::uint64_t y;
};

} // namespace

int
main()
{
    // One simulated PM device (64 MB) with a single thread.
    core::Runtime rt(64 << 20, 1);
    pm::PmContext &ctx = rt.ctx(0);

    std::puts("-- 1. native persistence (Figure 1a) --");
    {
        auto *pt = rt.pool().at<Point>(0);
        auto *flag = rt.pool().at<std::uint64_t>(256);

        // Update the structure, persist it...
        ctx.storeField(pt->x, std::uint64_t{10});
        ctx.storeField(pt->y, std::uint64_t{20});
        ctx.flush(0, sizeof(Point));
        ctx.fence(pm::FenceKind::Ordering);
        // ...and only then set the flag, then make everything durable.
        ctx.storeField(*flag, std::uint64_t{1});
        ctx.flush(256, 8);
        ctx.fence(pm::FenceKind::Durability);

        std::printf("durable: pt={%llu,%llu} flag=%llu\n",
                    (unsigned long long)*rt.pool()
                        .durableAt<std::uint64_t>(0),
                    (unsigned long long)*rt.pool()
                        .durableAt<std::uint64_t>(8),
                    (unsigned long long)*rt.pool()
                        .durableAt<std::uint64_t>(256));
    }

    std::puts("\n-- 2. the HOPS model (Figure 1e): no flushes --");
    {
        core::HopsContext hops(ctx);
        auto *pt = rt.pool().at<Point>(512);
        auto *flag = rt.pool().at<std::uint64_t>(768);

        hops.set(pt->x, std::uint64_t{30});
        hops.set(pt->y, std::uint64_t{40});
        hops.ofence();                    // order pt before flag
        hops.set(*flag, std::uint64_t{1});
        hops.dfence();                    // the only durability point

        std::printf("durable: pt={%llu,%llu} flag=%llu "
                    "(zero clwb instructions)\n",
                    (unsigned long long)*rt.pool()
                        .durableAt<std::uint64_t>(512),
                    (unsigned long long)*rt.pool()
                        .durableAt<std::uint64_t>(520),
                    (unsigned long long)*rt.pool()
                        .durableAt<std::uint64_t>(768));
    }

    std::puts("\n-- 3. a crash loses what was never fenced --");
    {
        const std::uint64_t v = 0xAAAA;
        ctx.store(1024, &v, 8);   // dirty in the "cache", never flushed
        const std::uint64_t w = 0xBBBB;
        ctx.store(1088, &w, 8);
        ctx.persist(1088, 8);     // flushed + fenced: durable

        rt.crashHard();           // power failure

        std::printf("after crash: unfenced=0x%llX fenced=0x%llX\n",
                    (unsigned long long)*rt.pool()
                        .at<std::uint64_t>(1024),
                    (unsigned long long)*rt.pool()
                        .at<std::uint64_t>(1088));
    }

    std::puts("\nEvery operation above was traced:");
    const auto counters = rt.traces().totalCounters();
    std::printf("  PM stores=%llu flushes=%llu fences=%llu\n",
                (unsigned long long)counters.pmStores,
                (unsigned long long)counters.pmFlushes,
                (unsigned long long)counters.fences);
    return 0;
}

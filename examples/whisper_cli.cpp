/**
 * @file
 * whisper_cli — record, analyze and simulate WHISPER traces.
 *
 * The command-line face of the library, mirroring the paper's
 * workflow: instrument a run (their PIN/mmiotrace/ftrace pipeline),
 * analyze the trace offline (§5), replay it through hardware models
 * (§6).
 *
 *   whisper_cli record  <app> <trace.bin> [ops] [threads]
 *   whisper_cli analyze <trace.bin> [--jobs N]
 *   whisper_cli simulate <trace.bin> [model...]
 *   whisper_cli list
 *
 * Models: x86-nvm x86-pwq hops-nvm hops-pwq dpo ideal (default: all).
 * All subcommands are documented in docs/CLI.md.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "analysis/pipeline.hh"
#include "common/table.hh"
#include "core/harness.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"

using namespace whisper;

namespace
{

int
usage()
{
    std::fputs(
        "usage:\n"
        "  whisper_cli record  <app> <trace.bin> [ops] [threads]\n"
        "  whisper_cli analyze <trace.bin> [--jobs N]\n"
        "  whisper_cli simulate <trace.bin> [model...]\n"
        "  whisper_cli list\n"
        "models: x86-nvm x86-pwq hops-nvm hops-pwq dpo ideal\n",
        stderr);
    return 2;
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    core::AppConfig config;
    config.opsPerThread = argc > 4 ? std::atoll(argv[4]) : 200;
    config.threads = argc > 5 ? std::atoi(argv[5]) : 4;
    config.poolBytes = 256 << 20;
    config.recordVolatile = true;

    std::printf("recording %s (%u x %llu ops)...\n", argv[2],
                config.threads,
                (unsigned long long)config.opsPerThread);
    core::RunResult result = core::runApp(argv[2], config);
    if (!result.verified) {
        std::fputs("verification failed\n", stderr);
        return 1;
    }
    if (!trace::writeTraceFile(argv[3], result.runtime->traces())) {
        std::fputs("trace write failed\n", stderr);
        return 1;
    }
    std::printf("wrote %zu events to %s\n",
                result.runtime->traces().totalEvents(), argv[3]);
    return 0;
}

int
cmdAnalyze(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    analysis::AnalysisOptions options;
    const char *path = nullptr;
    for (int i = 2; i < argc; i++) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            char *end = nullptr;
            unsigned long jobs = std::strtoul(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "bad --jobs value: %s\n", argv[i]);
                return usage();
            }
            options.jobs = static_cast<unsigned>(jobs);
        } else if (!path) {
            path = argv[i];
        } else {
            return usage();
        }
    }
    if (!path)
        return usage();

    // Streams the file's per-thread sections across --jobs workers;
    // the printed table is byte-identical at any job count.
    analysis::AnalysisResult result;
    if (!analysis::analyzeTraceFile(path, result, options)) {
        std::fputs("trace read failed\n", stderr);
        return 1;
    }

    TextTable table(std::string("analysis of ") + path);
    table.header({"metric", "value"});
    table.row({"threads", TextTable::num(result.threadCount)});
    table.row({"events", TextTable::num(result.totalEvents)});
    table.row({"epochs", TextTable::num(result.epochs.totalEpochs)});
    table.row({"transactions",
               TextTable::num(result.epochs.totalTransactions)});
    table.row({"epochs/tx (median)",
               TextTable::num(result.epochs.epochsPerTx.median())});
    table.row({"singleton epochs",
               TextTable::percent(result.epochs.singletonFraction,
                                  1)});
    table.row({"self-dependent",
               TextTable::percent(result.dependencies.selfFraction(),
                                  2)});
    table.row({"cross-dependent",
               TextTable::percent(
                   result.dependencies.crossFraction(), 3)});
    table.row({"PM access share",
               TextTable::percent(result.mix.pmFraction(), 2)});
    table.row({"NTI write share",
               TextTable::percent(result.nti.ntiFraction(), 1)});
    table.row({"write amplification",
               TextTable::fixed(result.amplification.ratio(), 2) +
                   "x"});
    table.print();
    return 0;
}

int
cmdSimulate(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::TraceSet traces;
    if (!trace::readTraceFile(argv[2], traces)) {
        std::fputs("trace read failed\n", stderr);
        return 1;
    }

    const std::map<std::string, sim::ModelKind> by_name = {
        {"x86-nvm", sim::ModelKind::X86Nvm},
        {"x86-pwq", sim::ModelKind::X86Pwq},
        {"hops-nvm", sim::ModelKind::HopsNvm},
        {"hops-pwq", sim::ModelKind::HopsPwq},
        {"dpo", sim::ModelKind::Dpo},
        {"ideal", sim::ModelKind::Ideal},
    };
    std::vector<sim::ModelKind> kinds;
    for (int i = 3; i < argc; i++) {
        auto it = by_name.find(argv[i]);
        if (it == by_name.end()) {
            std::fprintf(stderr, "unknown model '%s'\n", argv[i]);
            return 2;
        }
        kinds.push_back(it->second);
    }
    if (kinds.empty()) {
        for (const auto &[name, kind] : by_name)
            kinds.push_back(kind);
    }

    TextTable table(std::string("simulation of ") + argv[2]);
    table.header({"model", "cycles", "fence stalls", "PB-full",
                  "L1 hit rate", "drained epochs"});
    for (const auto &r : sim::runModels(traces, sim::SimParams{},
                                        kinds)) {
        table.row({r.model, TextTable::num(r.cycles),
                   TextTable::num(r.persist.fenceStalls),
                   TextTable::num(r.persist.pbFullStalls),
                   TextTable::percent(r.l1Stats.hitRate(), 1),
                   TextTable::num(r.persist.epochsDrained)});
    }
    table.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "list") == 0) {
        for (const auto &name : core::registeredApps())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (std::strcmp(argv[1], "record") == 0)
        return cmdRecord(argc, argv);
    if (std::strcmp(argv[1], "analyze") == 0)
        return cmdAnalyze(argc, argv);
    if (std::strcmp(argv[1], "simulate") == 0)
        return cmdSimulate(argc, argv);
    return usage();
}

/**
 * @file
 * whisper_cli — record, analyze and simulate WHISPER traces.
 *
 * The command-line face of the library, mirroring the paper's
 * workflow: instrument a run (their PIN/mmiotrace/ftrace pipeline),
 * analyze the trace offline (§5), replay it through hardware models
 * (§6).
 *
 *   whisper_cli record  <app> <trace.bin> [ops] [threads]
 *   whisper_cli analyze <trace.bin> [--jobs N]
 *   whisper_cli optimize <trace.bin> [--jobs N] [--json]
 *   whisper_cli simulate <trace.bin> [model...]
 *   whisper_cli apps [--ops N] [--threads N]
 *   whisper_cli workload --app <name> [--mix A..F] [--dist d] ...
 *   whisper_cli crashfuzz [--cases N] [--jobs N] [--apps a,b] ...
 *   whisper_cli crashfuzz --replay <app>:<caseId> [--at K] ...
 *   whisper_cli lincheck <history.hist> [--budget N]
 *   whisper_cli list
 *   whisper_cli help
 *
 * Models: x86-nvm x86-pwq hops-nvm hops-pwq dpo ideal (default: all).
 * All subcommands are documented in docs/CLI.md.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "analysis/optimize.hh"
#include "analysis/pipeline.hh"
#include "common/flags.hh"
#include "common/table.hh"
#include "core/harness.hh"
#include "fuzz/crash_fuzz.hh"
#include "lincheck/checker.hh"
#include "lincheck/history_io.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"
#include "workload/workload.hh"

using namespace whisper;

namespace
{

/**
 * The usage text, shared by `help` (stdout, exit 0) and error paths
 * (stderr, exit 2). scripts/check.sh diffs this text against
 * docs/CLI.md, so keep the two in sync.
 */
void
printUsage(std::FILE *to)
{
    std::fputs(
        "usage:\n"
        "  whisper_cli record  <app> <trace.bin> [ops] [threads]\n"
        "  whisper_cli analyze <trace.bin> [--jobs N]\n"
        "  whisper_cli optimize <trace.bin> [--jobs N] [--json]\n"
        "  whisper_cli simulate <trace.bin> "
        "[--device table3|optane] [model...]\n"
        "  whisper_cli apps [--ops N] [--threads N]\n"
        "  whisper_cli workload --app <name> [--mix A..F|r:u:i:m:s] "
        "[--dist uniform|zipfian|latest] [--keys N] [--threads N] "
        "[--ops N] [--seed S] [--pool-mb M] [--theta T] "
        "[--trace <out.bin>] [--lincheck] [--json]\n"
        "  whisper_cli crashfuzz [--cases N] [--jobs N] "
        "[--apps a,b] [--ops N] [--seed S] [--pool-mb M] "
        "[--threads N] [--no-shrink] [--faults] [--elide] "
        "[--lincheck] [--json]\n"
        "  whisper_cli crashfuzz --replay <app>:<caseId> [--at K] "
        "[--survivors csv|none] [--ops N] [--seed S] [--pool-mb M] "
        "[--threads N] [--schedule S] [--elide] [--lincheck] "
        "[--fault-plan seed:poison:tear%:transient]\n"
        "  whisper_cli lincheck <history.hist> [--budget N]\n"
        "  whisper_cli list\n"
        "  whisper_cli help\n"
        "models: x86-nvm x86-pwq hops-nvm hops-pwq dpo ideal\n",
        to);
}

int
usage()
{
    printUsage(stderr);
    return 2;
}

/** Report a FlagParser failure, then the usage text (exit 2). */
int
flagError(const FlagParser &fp)
{
    std::fprintf(stderr, "whisper_cli: %s\n", fp.error().c_str());
    return usage();
}

int
cmdRecord(int argc, char **argv)
{
    FlagParser fp;
    fp.command("record").maxPositionals(4);
    if (!fp.parse(argc, argv))
        return flagError(fp);
    const auto &pos = fp.positionals();
    if (pos.size() < 2)
        return usage();
    core::AppConfig config;
    config.opsPerThread = 200;
    config.threads = 4;
    if (pos.size() > 2 && !parseU64(pos[2], config.opsPerThread))
        return usage();
    std::uint64_t threads = 0;
    if (pos.size() > 3) {
        if (!parseU64(pos[3], threads) || threads < 1)
            return usage();
        config.threads = static_cast<unsigned>(threads);
    }
    config.poolBytes = 256 << 20;
    config.recordVolatile = true;

    std::printf("recording %s (%u x %llu ops)...\n", pos[0],
                config.threads,
                (unsigned long long)config.opsPerThread);
    core::RunResult result = core::runApp(pos[0], config);
    if (!result.verified) {
        std::fprintf(stderr, "verification failed:\n%s\n",
                     result.report.describe().c_str());
        return 1;
    }
    if (!trace::writeTraceFile(pos[1], result.runtime->traces())) {
        std::fputs("trace write failed\n", stderr);
        return 1;
    }
    std::printf("wrote %zu events to %s\n",
                result.runtime->traces().totalEvents(), pos[1]);
    return 0;
}

int
cmdAnalyze(int argc, char **argv)
{
    analysis::AnalysisOptions options;
    FlagParser fp;
    fp.command("analyze")
        .u32("--jobs", &options.jobs)
        .maxPositionals(1);
    if (!fp.parse(argc, argv))
        return flagError(fp);
    if (fp.positionals().empty())
        return usage();
    const char *path = fp.positionals()[0];

    // Streams the file's per-thread sections across --jobs workers;
    // the printed table is byte-identical at any job count.
    analysis::AnalysisResult result;
    if (!analysis::analyzeTraceFile(path, result, options)) {
        std::fputs("trace read failed\n", stderr);
        return 1;
    }

    TextTable table(std::string("analysis of ") + path);
    table.header({"metric", "value"});
    table.row({"threads", TextTable::num(result.threadCount)});
    table.row({"events", TextTable::num(result.totalEvents)});
    table.row({"epochs", TextTable::num(result.epochs.totalEpochs)});
    table.row({"transactions",
               TextTable::num(result.epochs.totalTransactions)});
    table.row({"epochs/tx (median)",
               TextTable::num(result.epochs.epochsPerTx.median())});
    table.row({"singleton epochs",
               TextTable::percent(result.epochs.singletonFraction,
                                  1)});
    table.row({"self-dependent",
               TextTable::percent(result.dependencies.selfFraction(),
                                  2)});
    table.row({"cross-dependent",
               TextTable::percent(
                   result.dependencies.crossFraction(), 3)});
    table.row({"PM access share",
               TextTable::percent(result.mix.pmFraction(), 2)});
    table.row({"NTI write share",
               TextTable::percent(result.nti.ntiFraction(), 1)});
    table.row({"write amplification",
               TextTable::fixed(result.amplification.ratio(), 2) +
                   "x"});
    table.print();
    return 0;
}

int
cmdOptimize(int argc, char **argv)
{
    analysis::OptimizeOptions options;
    bool json = false;
    FlagParser fp;
    fp.command("optimize")
        .u32("--jobs", &options.jobs)
        .flag("--json", &json)
        .maxPositionals(1);
    if (!fp.parse(argc, argv))
        return flagError(fp);
    if (fp.positionals().empty())
        return usage();
    const char *path = fp.positionals()[0];

    // Same section-streaming driver discipline as analyze: the
    // summary adds up per thread, so output is byte-identical at any
    // --jobs value (scripts/check.sh diffs --jobs 1 against N).
    analysis::OptimizeResult result;
    if (!analysis::optimizeTraceFile(path, result, options)) {
        std::fputs("trace read failed\n", stderr);
        return 1;
    }
    const analysis::OptimizeSummary &s = result.summary;
    const auto suggestions = analysis::suggestElisions(s);

    if (json) {
        std::printf(
            "{\"threads\":%zu,\"events\":%llu,"
            "\"flushes\":{\"total\":%llu,\"redirtied\":%llu,"
            "\"clean\":%llu,\"redundant\":%llu},"
            "\"fences\":{\"total\":%llu,\"no_conflict\":%llu,"
            "\"coalescible\":%llu,\"redundant\":%llu},"
            "\"origins\":[",
            result.threadCount,
            (unsigned long long)result.totalEvents,
            (unsigned long long)s.totalFlushes,
            (unsigned long long)s.flushRedirtied,
            (unsigned long long)s.flushClean,
            (unsigned long long)s.redundantFlushes(),
            (unsigned long long)s.totalFences,
            (unsigned long long)s.fenceNoConflict,
            (unsigned long long)s.fenceCoalescible,
            (unsigned long long)s.redundantFences());
        bool first = true;
        for (std::size_t i = 0; i < trace::kOriginCount; i++) {
            const analysis::OriginCounts &c = s.byOrigin[i];
            if (!c.flushes && !c.fences)
                continue;
            std::printf(
                "%s{\"origin\":\"%s\",\"flushes\":%llu,"
                "\"redundant_flushes\":%llu,\"fences\":%llu,"
                "\"redundant_fences\":%llu}",
                first ? "" : ",",
                trace::originName(static_cast<trace::Origin>(i)),
                (unsigned long long)c.flushes,
                (unsigned long long)c.redundantFlushes,
                (unsigned long long)c.fences,
                (unsigned long long)c.redundantFences);
            first = false;
        }
        std::printf("],\"suggestions\":[");
        first = true;
        for (const auto &sug : suggestions) {
            std::printf(
                "%s{\"origin\":\"%s\",\"policy\":\"%s\","
                "\"redundant_flushes\":%llu,"
                "\"redundant_fences\":%llu}",
                first ? "" : ",", trace::originName(sug.origin),
                sug.policy,
                (unsigned long long)sug.counts.redundantFlushes,
                (unsigned long long)sug.counts.redundantFences);
            first = false;
        }
        std::printf("]}\n");
        return 0;
    }

    const auto pct = [](std::uint64_t part, std::uint64_t whole) {
        return TextTable::percent(
            whole ? static_cast<double>(part) /
                        static_cast<double>(whole)
                  : 0.0,
            1);
    };
    TextTable table(std::string("fence/flush redundancy in ") + path);
    table.header({"metric", "count", "share"});
    table.row({"threads", TextTable::num(result.threadCount), ""});
    table.row({"events", TextTable::num(result.totalEvents), ""});
    table.row({"flushes", TextTable::num(s.totalFlushes), ""});
    table.row({"  (a) re-dirtied", TextTable::num(s.flushRedirtied),
               pct(s.flushRedirtied, s.totalFlushes)});
    table.row({"  (b) clean line", TextTable::num(s.flushClean),
               pct(s.flushClean, s.totalFlushes)});
    table.row({"redundant flushes",
               TextTable::num(s.redundantFlushes()),
               pct(s.redundantFlushes(), s.totalFlushes)});
    table.row({"fences", TextTable::num(s.totalFences), ""});
    table.row({"  (c) no conflict", TextTable::num(s.fenceNoConflict),
               pct(s.fenceNoConflict, s.totalFences)});
    table.row({"  (d) coalescible",
               TextTable::num(s.fenceCoalescible),
               pct(s.fenceCoalescible, s.totalFences)});
    table.row({"redundant fences", TextTable::num(s.redundantFences()),
               pct(s.redundantFences(), s.totalFences)});
    table.print();

    TextTable origins("by origin site");
    origins.header({"origin", "flushes", "redundant", "fences",
                    "redundant"});
    for (std::size_t i = 0; i < trace::kOriginCount; i++) {
        const analysis::OriginCounts &c = s.byOrigin[i];
        if (!c.flushes && !c.fences)
            continue;
        origins.row(
            {trace::originName(static_cast<trace::Origin>(i)),
             TextTable::num(c.flushes),
             TextTable::num(c.redundantFlushes),
             TextTable::num(c.fences),
             TextTable::num(c.redundantFences)});
    }
    origins.print();

    for (const auto &sug : suggestions) {
        if (sug.policy[0] != '\0')
            std::printf("suggest: %s -> elision policy %s "
                        "(%llu flushes, %llu fences removable)\n",
                        trace::originName(sug.origin), sug.policy,
                        (unsigned long long)
                            sug.counts.redundantFlushes,
                        (unsigned long long)
                            sug.counts.redundantFences);
        else
            std::printf("measured: %s has %llu/%llu redundant ops "
                        "but no mechanically-safe policy\n",
                        trace::originName(sug.origin),
                        (unsigned long long)(
                            sug.counts.redundantFlushes +
                            sug.counts.redundantFences),
                        (unsigned long long)(sug.counts.flushes +
                                             sug.counts.fences));
    }
    return 0;
}

int
cmdSimulate(int argc, char **argv)
{
    const char *device = "table3";
    FlagParser fp;
    fp.command("simulate").str("--device", &device);
    if (!fp.parse(argc, argv))
        return flagError(fp);
    const auto &pos = fp.positionals();
    if (pos.empty())
        return usage();

    sim::SimParams params;
    if (std::strcmp(device, "optane") == 0) {
        params.device = sim::PmDeviceParams::optaneCalibrated();
    } else if (std::strcmp(device, "table3") != 0) {
        std::fprintf(stderr,
                     "unknown device '%s' (table3|optane)\n", device);
        return 2;
    }

    trace::TraceSet traces;
    if (!trace::readTraceFile(pos[0], traces)) {
        std::fputs("trace read failed\n", stderr);
        return 1;
    }

    const std::map<std::string, sim::ModelKind> by_name = {
        {"x86-nvm", sim::ModelKind::X86Nvm},
        {"x86-pwq", sim::ModelKind::X86Pwq},
        {"hops-nvm", sim::ModelKind::HopsNvm},
        {"hops-pwq", sim::ModelKind::HopsPwq},
        {"dpo", sim::ModelKind::Dpo},
        {"ideal", sim::ModelKind::Ideal},
    };
    std::vector<sim::ModelKind> kinds;
    for (std::size_t i = 1; i < pos.size(); i++) {
        auto it = by_name.find(pos[i]);
        if (it == by_name.end()) {
            std::fprintf(stderr, "unknown model '%s'\n", pos[i]);
            return 2;
        }
        kinds.push_back(it->second);
    }
    if (kinds.empty()) {
        for (const auto &[name, kind] : by_name)
            kinds.push_back(kind);
    }

    const auto results = sim::runModels(traces, params, kinds);

    TextTable table(std::string("simulation of ") + pos[0]);
    table.header({"model", "cycles", "fence stalls", "PB-full",
                  "L1 hit rate", "drained epochs"});
    for (const auto &r : results) {
        table.row({r.model, TextTable::num(r.cycles),
                   TextTable::num(r.persist.fenceStalls),
                   TextTable::num(r.persist.pbFullStalls),
                   TextTable::percent(r.l1Stats.hitRate(), 1),
                   TextTable::num(r.persist.epochsDrained)});
    }
    table.print();

    if (params.device.calibrated()) {
        // Per-DIMM device traffic: only the calibrated device has a
        // multi-DIMM map, so the table would be all-zero noise under
        // table3 (which must also stay byte-identical to the legacy
        // output).
        const unsigned dimms = params.device.dimmMap.dimms();
        TextTable dev("PM device (per-DIMM line write-backs)");
        std::vector<std::string> head = {"model", "wc hits",
                                         "wc evicts", "queue wait"};
        for (unsigned d = 0; d < dimms; d++)
            head.push_back("dimm" + std::to_string(d));
        dev.header(head);
        for (const auto &r : results) {
            std::vector<std::string> row = {
                r.model, TextTable::num(r.device.wcHits),
                TextTable::num(r.device.wcEvicts),
                TextTable::num(r.device.queueWaitCycles)};
            for (unsigned d = 0; d < dimms; d++)
                row.push_back(TextTable::num(r.device.dimmWrites[d]));
            dev.row(row);
        }
        dev.print();
    }
    return 0;
}

/**
 * Run every registered application at a small scale and print the §5
 * headline metrics grouped by access layer, with one aggregate row
 * per layer — the quickest way to see the MOD layer's epochs/tx and
 * write amplification next to the logging libraries'.
 */
int
cmdApps(int argc, char **argv)
{
    core::AppConfig config;
    config.opsPerThread = 200;
    config.threads = 4;
    config.poolBytes = 256 << 20;
    FlagParser fp;
    fp.command("apps")
        .u64("--ops", &config.opsPerThread)
        .u32("--threads", &config.threads, 1)
        .maxPositionals(0);
    if (!fp.parse(argc, argv))
        return flagError(fp);

    struct Row
    {
        std::string app;
        std::uint64_t txs = 0;
        std::uint64_t epochsPerTx = 0;
        std::uint64_t userBytes = 0;
        std::uint64_t metaBytes = 0;
        double ratio = 0.0;
    };
    std::map<core::AccessLayer, std::vector<Row>> by_layer;

    for (const auto &name : core::registeredApps()) {
        core::RunResult result = core::runApp(name, config);
        if (!result.verified) {
            std::fprintf(stderr, "%s failed verification:\n%s\n",
                         name.c_str(),
                         result.report.describe().c_str());
            return 1;
        }
        const analysis::AnalysisResult a = core::analyzeRun(result);
        Row row;
        row.app = name;
        row.txs = a.epochs.totalTransactions;
        row.epochsPerTx = a.epochs.epochsPerTx.median();
        row.userBytes = a.amplification.userBytes;
        row.metaBytes = a.amplification.logBytes +
                        a.amplification.allocBytes +
                        a.amplification.txMetaBytes +
                        a.amplification.fsMetaBytes;
        row.ratio = a.amplification.ratio();
        by_layer[result.layer].push_back(row);
    }

    TextTable table("per-layer application aggregates");
    table.header({"layer", "app", "tx", "epochs/tx", "user B",
                  "meta B", "amplification"});
    for (const auto &[layer, rows] : by_layer) {
        std::uint64_t user = 0, meta = 0;
        for (const Row &row : rows) {
            table.row({core::accessLayerName(layer), row.app,
                       TextTable::num(row.txs),
                       TextTable::num(row.epochsPerTx),
                       TextTable::num(row.userBytes),
                       TextTable::num(row.metaBytes),
                       TextTable::fixed(row.ratio, 2) + "x"});
            user += row.userBytes;
            meta += row.metaBytes;
        }
        const double ratio =
            user ? static_cast<double>(meta) /
                       static_cast<double>(user)
                 : 0.0;
        table.row({core::accessLayerName(layer), "= layer total", "",
                   "", TextTable::num(user), TextTable::num(meta),
                   TextTable::fixed(ratio, 2) + "x"});
    }
    table.print();
    return 0;
}

/**
 * Run one generated YCSB-style workload and print throughput plus the
 * latency percentiles (simulated logical-clock ticks, 1 tick = 1 ns).
 * `--json` emits the docs/WORKLOADS.md JSON object instead; `--trace`
 * additionally writes the run's trace for `analyze` / `simulate`.
 */
int
cmdWorkload(int argc, char **argv)
{
    workload::WorkloadOptions opts;
    bool json = false;
    const char *trace_path = nullptr;
    const char *app = nullptr;

    FlagParser fp;
    fp.command("workload")
        .flag("--json", &json)
        .str("--app", &app)
        .custom("--mix",
                [&opts](const char *v) {
                    return workload::MixSpec::parse(v, opts.mix);
                })
        .custom("--dist",
                [&opts](const char *v) {
                    return workload::parseKeyDist(v, opts.dist);
                })
        .u64("--keys", &opts.keys, 1)
        .u32("--threads", &opts.threads, 1)
        .u64("--ops", &opts.opsPerThread)
        .u64("--seed", &opts.seed)
        .megabytes("--pool-mb", &opts.poolBytes)
        .custom("--theta",
                [&opts](const char *v) {
                    char *end = nullptr;
                    opts.zipfTheta = std::strtod(v, &end);
                    return end != v && *end == '\0' &&
                           opts.zipfTheta > 0.0 &&
                           opts.zipfTheta < 1.0;
                })
        .str("--trace", &trace_path)
        .flag("--lincheck", &opts.lincheck)
        .maxPositionals(0);
    if (!fp.parse(argc, argv))
        return flagError(fp);
    if (!app)
        return usage();
    opts.app = app;

    const workload::WorkloadResult result =
        workload::runWorkload(opts);

    if (trace_path &&
        !trace::writeTraceFile(trace_path,
                               result.runtime->traces())) {
        std::fputs("trace write failed\n", stderr);
        return 1;
    }

    if (json) {
        std::printf("%s\n", result.json().c_str());
    } else {
        char digest[24];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      (unsigned long long)result.digest());
        TextTable table("workload " + opts.app + " mix " +
                        opts.mix.name + " / " +
                        workload::keyDistName(opts.dist));
        table.header({"metric", "value"});
        table.row({"layer", result.layerName});
        table.row({"threads", TextTable::num(opts.threads)});
        table.row({"keys", TextTable::num(opts.keys)});
        table.row({"ops", TextTable::num(result.ops.total())});
        table.row({"throughput (ops/s)",
                   TextTable::fixed(result.throughputOpsPerSec(), 0)});
        table.row({"p50 (ns)",
                   TextTable::num(result.latency.quantile(0.50))});
        table.row({"p90 (ns)",
                   TextTable::num(result.latency.quantile(0.90))});
        table.row({"p99 (ns)",
                   TextTable::num(result.latency.quantile(0.99))});
        table.row({"p999 (ns)",
                   TextTable::num(result.latency.quantile(0.999))});
        table.row({"min (ns)",
                   TextTable::num(result.latency.minValue())});
        table.row({"max (ns)",
                   TextTable::num(result.latency.maxValue())});
        table.row({"mean (ns)",
                   TextTable::fixed(result.latency.mean(), 1)});
        table.row({"digest", digest});
        if (result.lincheckRan) {
            char lin[64];
            std::snprintf(lin, sizeof(lin),
                          "%s keys=%llu violations=%llu%s",
                          result.lincheckViolations == 0
                              ? "witness found"
                              : "VIOLATION",
                          (unsigned long long)result.lincheckKeys,
                          (unsigned long long)
                              result.lincheckViolations,
                          result.lincheckBudget ? " (budget-degraded)"
                                                : "");
            table.row({"lincheck", lin});
        }
        table.row({"verified", result.verified ? "yes" : "NO"});
        table.print();
        if (trace_path)
            std::printf("wrote %zu events to %s\n",
                        result.runtime->traces().totalEvents(),
                        trace_path);
    }
    if (!result.verified) {
        std::fprintf(stderr, "verification failed:\n%s\n",
                     result.check.describe().c_str());
        return 1;
    }
    return 0;
}

int
cmdCrashfuzz(int argc, char **argv)
{
    // The suite list is captured before the demo app registers, so a
    // default sweep covers exactly the fourteen registered
    // applications while `--apps faulty` still resolves.
    const std::vector<std::string> suite = core::registeredApps();
    fuzz::registerFaultyApp();

    fuzz::SweepOptions options;
    std::string replay;
    std::uint64_t at = ~std::uint64_t(0);
    std::uint64_t schedule = ~std::uint64_t(0);
    bool have_survivors = false;
    bool json = false;
    bool have_fault_plan = false;
    pm::FaultPlan fault_plan;
    std::vector<whisper::LineAddr> survivors;
    bool no_shrink = false;
    const char *replay_arg = nullptr;

    FlagParser fp;
    fp.command("crashfuzz")
        .flag("--no-shrink", &no_shrink)
        .flag("--faults", &options.config.faults)
        .flag("--elide", &options.config.elide)
        .flag("--lincheck", &options.config.lincheck)
        .flag("--json", &json)
        .u64("--cases", &options.cases)
        .u32("--jobs", &options.jobs)
        .u64("--ops", &options.config.opsPerThread)
        .u64("--seed", &options.config.sweepSeed)
        .megabytes("--pool-mb", &options.config.poolBytes)
        .u32("--threads", &options.config.threads, 1)
        .u64("--schedule", &schedule)
        .custom("--apps",
                [&options](const char *v) {
                    for (const char *p = v; *p;) {
                        const char *comma = std::strchr(p, ',');
                        options.apps.emplace_back(
                            p, comma ? comma - p : std::strlen(p));
                        p = comma ? comma + 1 : p + std::strlen(p);
                    }
                    return true;
                })
        .str("--replay", &replay_arg)
        .u64("--at", &at)
        .custom("--survivors",
                [&](const char *v) {
                    have_survivors = true;
                    if (std::strcmp(v, "none") == 0)
                        return true;
                    for (const char *p = v; *p;) {
                        char *end = nullptr;
                        survivors.push_back(
                            std::strtoull(p, &end, 0));
                        if (end == p)
                            return false;
                        p = *end == ',' ? end + 1 : end;
                    }
                    return true;
                })
        .custom("--fault-plan",
                [&](const char *v) {
                    // seed:poisonCount:tearPercent:transientEvery,
                    // as emitted by fuzz::replayCommand.
                    char *end = nullptr;
                    fault_plan.seed = std::strtoull(v, &end, 0);
                    if (end == v)
                        return false;
                    unsigned fields[3] = {0, 0, 0};
                    for (int f = 0; f < 3; f++) {
                        if (*end != ':')
                            return false;
                        const char *p = end + 1;
                        fields[f] = static_cast<unsigned>(
                            std::strtoul(p, &end, 0));
                        if (end == p)
                            return false;
                    }
                    if (*end != '\0')
                        return false;
                    fault_plan.poisonCount = fields[0];
                    fault_plan.tearProb =
                        static_cast<double>(fields[1]) / 100.0;
                    fault_plan.transientEvery = fields[2];
                    have_fault_plan = true;
                    return true;
                })
        .maxPositionals(0);
    if (!fp.parse(argc, argv))
        return flagError(fp);
    if (no_shrink)
        options.shrinkViolations = false;
    if (json)
        options.keepReports = true;
    if (replay_arg)
        replay = replay_arg;

    if (!replay.empty()) {
        const std::size_t colon = replay.rfind(':');
        std::uint64_t case_id = 0;
        if (colon == std::string::npos ||
            !parseU64(replay.c_str() + colon + 1, case_id))
            return usage();
        const std::string app = replay.substr(0, colon);

        const std::uint64_t total =
            fuzz::profilePmOps(app, options.config);
        fuzz::FuzzCase c =
            fuzz::deriveCase(app, case_id, total, options.config);
        if (at != ~std::uint64_t(0))
            c.crashAt = at;
        if (schedule != ~std::uint64_t(0))
            c.crash.schedule = schedule;
        if (have_fault_plan)
            c.fault = fault_plan;
        const fuzz::CaseOutcome out = fuzz::runCase(
            c, options.config,
            have_survivors ? &survivors : nullptr);
        if (json) {
            std::printf("%s\n",
                        core::toJson(out.report).c_str());
        } else {
            std::printf("case %s:%llu crashAt=%llu threads=%u "
                        "schedule=0x%llx fired=%d survivors=%zu "
                        "digest=%016llx image=%016llx\n",
                        app.c_str(), (unsigned long long)case_id,
                        (unsigned long long)c.crashAt, c.crash.threads,
                        (unsigned long long)c.crash.schedule,
                        out.fired ? 1 : 0, out.survivors.size(),
                        (unsigned long long)out.digest,
                        (unsigned long long)out.imageHash);
            if (!c.fault.none()) {
                std::printf("faults: torn=%llu poisoned=%llu "
                            "transient=%llu degraded=%d\n",
                            (unsigned long long)out.linesTorn,
                            (unsigned long long)out.linesPoisoned,
                            (unsigned long long)out.transientFaults,
                            out.degraded ? 1 : 0);
            }
            if (out.lincheckRan) {
                std::printf(
                    "lincheck: %s keys=%llu violations=%llu%s\n",
                    out.lincheckOk ? "witness found" : "VIOLATION",
                    (unsigned long long)out.lincheckKeys,
                    (unsigned long long)out.lincheckViolations,
                    out.lincheckBudget ? " (budget-degraded)" : "");
                if (!out.lincheckDump.empty())
                    std::printf("lincheck history: %s\n",
                                out.lincheckDump.c_str());
            }
        }
        if (!out.ok) {
            if (!json)
                std::printf("VIOLATION reproduced: %s\n",
                            out.why.c_str());
            return 1;
        }
        if (!json)
            std::printf("recovery invariants held%s\n",
                        out.degraded ? " (degraded: named media loss)"
                                     : "");
        return 0;
    }

    if (options.apps.empty())
        options.apps = suite;
    if (options.config.threads > 1 || options.config.lincheck) {
        // Racing threads are only deterministic for the MOD and
        // Hybrid layers — and the same apps are the ones carrying
        // the lincheck workload surface; narrow the sweep to those
        // apps instead of panicking.
        std::vector<std::string> gateable;
        for (const auto &name : options.apps)
            if (name.rfind("mod-", 0) == 0 ||
                name.rfind("halo-", 0) == 0)
                gateable.push_back(name);
        options.apps = std::move(gateable);
        if (options.apps.empty()) {
            std::fputs("--threads > 1 and --lincheck need MOD- or "
                       "Hybrid-layer apps (mod-hashmap, mod-vector, "
                       "halo-hashmap)\n", stderr);
            return 2;
        }
    }
    const auto reports = fuzz::sweep(options);

    std::uint64_t violations = 0;
    if (json) {
        // Line-delimited JSON: one VerifyReport per case, in (app,
        // case id) order — Degraded entries included.
        for (const auto &r : reports) {
            for (const auto &rep : r.caseReports)
                std::printf("%s\n", core::toJson(rep).c_str());
            violations += r.violations;
        }
        return violations ? 1 : 0;
    }

    TextTable table("crash-recovery fuzz sweep");
    table.header({"app", "pm ops", "cases", "fired", "violations",
                  "degraded", "digest"});
    for (const auto &r : reports) {
        char digest[24];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      (unsigned long long)r.digest);
        table.row({r.app, TextTable::num(r.totalPmOps),
                   TextTable::num(r.casesRun),
                   TextTable::num(r.casesFired),
                   TextTable::num(r.violations),
                   TextTable::num(r.casesDegraded), digest});
        violations += r.violations;
    }
    table.print();
    if (options.config.lincheck) {
        for (const auto &r : reports)
            std::printf("lincheck %s: violations=%llu "
                        "budget-degraded=%llu\n",
                        r.app.c_str(),
                        (unsigned long long)r.lincheckViolations,
                        (unsigned long long)r.lincheckBudget);
    }
    for (const auto &r : reports) {
        for (const auto &rep : r.reproducers) {
            std::printf("reproducer (%s): %s\n", rep.why.c_str(),
                        rep.command.c_str());
        }
    }
    return violations ? 1 : 0;
}

/**
 * Replay a dumped lincheck history through the checker alone —
 * nothing re-executes, so a violation dump from a crashfuzz sweep can
 * be inspected (and minimized dumps diffed) offline.
 */
int
cmdLincheck(int argc, char **argv)
{
    lincheck::CheckOptions opts;
    FlagParser fp;
    fp.command("lincheck")
        .u64("--budget", &opts.nodeBudget, 1)
        .maxPositionals(1);
    if (!fp.parse(argc, argv))
        return flagError(fp);
    if (fp.positionals().empty())
        return usage();
    const char *path = fp.positionals()[0];

    lincheck::History history;
    std::string error;
    if (!lincheck::readHistoryFile(path, history, error)) {
        std::fprintf(stderr, "whisper_cli: lincheck: %s\n",
                     error.c_str());
        return 2;
    }

    const lincheck::CheckResult result =
        lincheck::check(history, opts);
    std::printf("%s: %s ops=%zu keys=%zu nodes=%llu\n", path,
                result.brief().c_str(), history.ops.size(),
                result.keys.size(),
                (unsigned long long)result.nodesVisited);
    for (const auto &kv : result.keys) {
        if (kv.ok && !kv.budgetExhausted)
            continue;
        std::printf("  key 0x%llx: %s\n",
                    (unsigned long long)kv.key,
                    kv.ok ? "budget exhausted (verdict incomplete)"
                          : kv.why.c_str());
    }
    return result.ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "list") == 0) {
        for (const auto &name : core::registeredApps())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (std::strcmp(argv[1], "record") == 0)
        return cmdRecord(argc, argv);
    if (std::strcmp(argv[1], "analyze") == 0)
        return cmdAnalyze(argc, argv);
    if (std::strcmp(argv[1], "optimize") == 0)
        return cmdOptimize(argc, argv);
    if (std::strcmp(argv[1], "simulate") == 0)
        return cmdSimulate(argc, argv);
    if (std::strcmp(argv[1], "apps") == 0)
        return cmdApps(argc, argv);
    if (std::strcmp(argv[1], "workload") == 0)
        return cmdWorkload(argc, argv);
    if (std::strcmp(argv[1], "crashfuzz") == 0)
        return cmdCrashfuzz(argc, argv);
    if (std::strcmp(argv[1], "lincheck") == 0)
        return cmdLincheck(argc, argv);
    if (std::strcmp(argv[1], "help") == 0 ||
        std::strcmp(argv[1], "--help") == 0) {
        printUsage(stdout);
        return 0;
    }
    return usage();
}

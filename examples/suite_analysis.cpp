/**
 * @file
 * Run any WHISPER application and print its full behavioural profile:
 * the per-application slice of every analysis in the paper's §5,
 * computed by the parallel analysis pipeline.
 *
 * Usage:  ./examples/suite_analysis [app] [ops_per_thread] [threads]
 *                                   [jobs]
 *         app defaults to "hashmap"; list with "--list"; jobs is the
 *         analysis worker count (default 1; 0 = all cores) and does
 *         not change the printed numbers, only how fast they arrive.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.hh"
#include "core/harness.hh"

using namespace whisper;

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        for (const auto &name : core::registeredApps())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    core::AppConfig config;
    config.threads = argc > 3 ? std::atoi(argv[3]) : 4;
    config.opsPerThread = argc > 2 ? std::atoll(argv[2]) : 400;
    config.poolBytes = 256 << 20;
    const std::string app = argc > 1 ? argv[1] : "hashmap";
    const unsigned jobs =
        argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 1;

    std::printf("running %s: %u threads x %llu ops...\n", app.c_str(),
                config.threads,
                (unsigned long long)config.opsPerThread);
    core::RunResult result = core::runApp(app, config);
    if (!result.verified) {
        std::fprintf(stderr, "verification FAILED\n");
        return 1;
    }

    const analysis::AnalysisResult profile =
        core::analyzeRun(result, jobs);
    const analysis::EpochSummary &summary = profile.epochs;

    TextTable table("behavioural profile: " + app + " (" +
                    core::accessLayerName(result.layer) + ")");
    table.header({"metric", "value"});
    table.row({"epochs", TextTable::num(summary.totalEpochs)});
    table.row({"epochs/second",
               TextTable::fixed(summary.epochsPerSecond / 1e6, 2) +
                   " M"});
    table.row({"transactions",
               TextTable::num(summary.totalTransactions)});
    table.row({"epochs/tx (median)",
               TextTable::num(summary.epochsPerTx.median())});
    table.row({"singleton epochs",
               TextTable::percent(summary.singletonFraction, 1)});
    table.row({"singletons < 10 B",
               TextTable::percent(summary.singletonUnder10B, 1)});
    table.row({"self-dependent epochs",
               TextTable::percent(
                   profile.dependencies.selfFraction(), 2)});
    table.row({"cross-dependent epochs",
               TextTable::percent(
                   profile.dependencies.crossFraction(), 3)});
    table.row({"PM share of accesses",
               TextTable::percent(profile.mix.pmFraction(), 2)});
    table.row({"NTI share of PM writes",
               TextTable::percent(profile.nti.ntiFraction(), 1)});
    table.row({"write amplification",
               TextTable::fixed(profile.amplification.ratio(), 2) +
                   "x"});
    table.print();

    const auto buckets = BucketedDistribution::epochSizeBuckets();
    const auto fractions = buckets.fractions(summary.epochSizes);
    std::printf("\nepoch sizes:");
    for (std::size_t i = 0; i < fractions.size(); i++) {
        std::printf("  %s:%.1f%%", buckets.buckets()[i].label.c_str(),
                    100.0 * fractions[i]);
    }
    std::puts("");
    return 0;
}
